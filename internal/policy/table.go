package policy

import (
	"encoding/json"
	"fmt"
	"math"
)

// PadThreshold marks a padded internal node in a table: a real split
// threshold is always a midpoint of two finite feature values, so
// MaxFloat64 cannot occur naturally. Padded nodes exist because the table
// is a complete binary tree — when fitting stops early (pure node, too few
// samples) the remaining levels are filled with this threshold and every
// leaf below carries the same action, so the comparison's outcome is
// irrelevant. MaxFloat64 rather than +Inf keeps the arrays JSON-encodable.
const PadThreshold = math.MaxFloat64

// Table is a distilled decision-tree policy stored as a complete binary
// tree of depth Depth in heap order: internal node i tests
// state[Feat[i]] > Thresh[i] (false → child 2i+1, true → child 2i+2), and
// the leaves hold actions. The three arrays are flat and fixed-size
// (2^Depth-1 internal nodes, 2^Depth leaves), so evaluation is a short
// data-dependent walk with no pointer chasing, no bounds surprises and no
// allocation — the same design that made the rtree scan kernels fast.
//
// NaN feature values fail the > comparison and descend left, mirroring the
// rtree package's comparison semantics for NaN rects: deterministic on
// every platform, never a crash.
type Table struct {
	// Dim is the state dimensionality, Actions the action count.
	Dim, Actions int
	// Depth is the number of internal levels (0 = a single constant leaf).
	Depth int
	// Feat[i] and Thresh[i] describe internal node i; len 2^Depth-1.
	Feat   []int32
	Thresh []float64
	// Leaf holds the action per leaf; len 2^Depth.
	Leaf []int32
}

// cmpGT returns 1 if a > b, else 0. The compiler lowers this to a flag-set
// (SETcc) with no branch, exactly like the rtree package's cmpLE; kept tiny
// so it always inlines. NaN compares false, so poisoned states take the
// left child deterministically.
func cmpGT(a, b float64) int {
	if a > b {
		return 1
	}
	return 0
}

// Eval walks the table and returns the raw leaf action for state. The walk
// is branch-free apart from the loop itself: each level computes the child
// index arithmetically from a SETcc comparison. len(state) must be >= Dim.
func (t *Table) Eval(state []float64) int {
	idx := 0
	feat, thresh := t.Feat, t.Thresh
	for d := 0; d < t.Depth; d++ {
		idx = 2*idx + 1 + cmpGT(state[feat[idx]], thresh[idx])
	}
	return int(t.Leaf[idx-len(feat)])
}

// Kind implements Engine.
func (t *Table) Kind() string { return KindTable }

// InputDim implements Engine.
func (t *Table) InputDim() int { return t.Dim }

// NumActions implements Engine.
func (t *Table) NumActions() int { return t.Actions }

// ChooseAction implements Engine. The mask clamps the leaf action into
// [0, numActions): the table cannot re-rank the masked prefix the way an
// argmax over Q-values can, so an out-of-mask action falls back to the
// highest masked action. With the default k=2 this is exact — a mask below
// the action count means a single candidate, which forces action 0 in both
// forms.
func (t *Table) ChooseAction(state []float64, numActions int) int {
	a := t.Eval(state)
	if n := clampActions(numActions, t.Actions); a >= n {
		a = n - 1
	}
	return a
}

// ChooseBatch implements Engine.
func (t *Table) ChooseBatch(states []float64, numActions int, dst []int) []int {
	for r := 0; r+t.Dim <= len(states); r += t.Dim {
		dst = append(dst, t.ChooseAction(states[r:r+t.Dim], numActions))
	}
	return dst
}

// maxTableDepth bounds accepted depths: 2^16 leaves is already far past
// any useful distillation and keeps hostile inputs from allocating GiBs.
const maxTableDepth = 16

// Validate checks the structural invariants a decoded table must satisfy
// before the insert path may walk it blind: array lengths matching the
// depth, features inside the state, leaf actions inside the action set.
func (t *Table) Validate() error {
	if t.Dim <= 0 {
		return fmt.Errorf("policy: table dim %d", t.Dim)
	}
	if t.Actions <= 0 {
		return fmt.Errorf("policy: table action count %d", t.Actions)
	}
	if t.Depth < 0 || t.Depth > maxTableDepth {
		return fmt.Errorf("policy: table depth %d outside [0,%d]", t.Depth, maxTableDepth)
	}
	internal := (1 << t.Depth) - 1
	if len(t.Feat) != internal || len(t.Thresh) != internal {
		return fmt.Errorf("policy: table depth %d wants %d internal nodes, has %d feats / %d thresholds",
			t.Depth, internal, len(t.Feat), len(t.Thresh))
	}
	if len(t.Leaf) != 1<<t.Depth {
		return fmt.Errorf("policy: table depth %d wants %d leaves, has %d", t.Depth, 1<<t.Depth, len(t.Leaf))
	}
	for i, f := range t.Feat {
		if f < 0 || int(f) >= t.Dim {
			return fmt.Errorf("policy: table node %d tests feature %d outside state dim %d", i, f, t.Dim)
		}
		if math.IsNaN(t.Thresh[i]) || math.IsInf(t.Thresh[i], 0) {
			return fmt.Errorf("policy: table node %d has non-finite threshold %v", i, t.Thresh[i])
		}
	}
	for i, a := range t.Leaf {
		if a < 0 || int(a) >= t.Actions {
			return fmt.Errorf("policy: table leaf %d holds action %d outside [0,%d)", i, a, t.Actions)
		}
	}
	return nil
}

// InternalNodes returns the number of non-padded internal nodes — the size
// figure rlr-inspect reports.
func (t *Table) InternalNodes() int {
	n := 0
	for _, th := range t.Thresh {
		if th != PadThreshold {
			n++
		}
	}
	return n
}

// tableJSON is the portable form of a Table.
type tableJSON struct {
	Dim     int       `json:"dim"`
	Actions int       `json:"actions"`
	Depth   int       `json:"depth"`
	Feat    []int32   `json:"feat"`
	Thresh  []float64 `json:"thresh"`
	Leaf    []int32   `json:"leaf"`
}

// MarshalJSON implements json.Marshaler.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(tableJSON{
		Dim: t.Dim, Actions: t.Actions, Depth: t.Depth,
		Feat: t.Feat, Thresh: t.Thresh, Leaf: t.Leaf,
	})
}

// UnmarshalJSON implements json.Unmarshaler and validates the result, so a
// decoded table is always safe to evaluate.
func (t *Table) UnmarshalJSON(data []byte) error {
	var p tableJSON
	if err := json.Unmarshal(data, &p); err != nil {
		return err
	}
	*t = Table{
		Dim: p.Dim, Actions: p.Actions, Depth: p.Depth,
		Feat: p.Feat, Thresh: p.Thresh, Leaf: p.Leaf,
	}
	if t.Feat == nil {
		t.Feat = []int32{}
	}
	if t.Thresh == nil {
		t.Thresh = []float64{}
	}
	return t.Validate()
}
