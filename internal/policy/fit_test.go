package policy

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/rlr-tree/rlrtree/internal/mlp"
)

func TestFitSeparable(t *testing.T) {
	// Axis-aligned separable labels: action = (x > 0.5) XOR-free simple
	// quadrant rule; a depth-2 tree represents it exactly.
	var states []float64
	var labels []int
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 400; i++ {
		x, y := rng.Float64(), rng.Float64()
		states = append(states, x, y)
		switch {
		case x <= 0.5 && y <= 0.5:
			labels = append(labels, 0)
		case x <= 0.5:
			labels = append(labels, 1)
		case y <= 0.5:
			labels = append(labels, 2)
		default:
			labels = append(labels, 3)
		}
	}
	tbl, err := Fit(states, 2, labels, 4, FitConfig{MaxDepth: 4, MinLeaf: 1})
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	for i := 0; i < 400; i++ {
		if got := tbl.Eval(states[2*i : 2*i+2]); got != labels[i] {
			t.Fatalf("row %d (%v): fit predicts %d, want %d",
				i, states[2*i:2*i+2], got, labels[i])
		}
	}
}

func TestFitPureAndTiny(t *testing.T) {
	// A pure node never splits: the whole table collapses to one action.
	states := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	labels := []int{2, 2, 2}
	tbl, err := Fit(states, 2, labels, 3, FitConfig{MaxDepth: 3})
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	if tbl.InternalNodes() != 0 {
		t.Fatalf("pure fit has %d internal nodes, want 0", tbl.InternalNodes())
	}
	for _, a := range tbl.Leaf {
		if a != 2 {
			t.Fatalf("pure fit leaf %d, want 2", a)
		}
	}
	// Fewer than 2*MinLeaf samples: majority leaf, no split.
	tbl, err = Fit([]float64{0.1, 0.9, 0.2}, 1, []int{0, 0, 1}, 2, FitConfig{MaxDepth: 2, MinLeaf: 2})
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	if tbl.InternalNodes() != 0 {
		t.Fatalf("tiny fit split anyway (%d internal nodes)", tbl.InternalNodes())
	}
	if tbl.Leaf[0] != 0 {
		t.Fatalf("tiny fit leaf %d, want majority 0", tbl.Leaf[0])
	}
}

func TestFitDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var states []float64
	var labels []int
	for i := 0; i < 500; i++ {
		x, y, z := rng.Float64(), rng.Float64(), rng.Float64()
		states = append(states, x, y, z)
		labels = append(labels, rng.Intn(3))
	}
	a, err := Fit(states, 3, labels, 3, FitConfig{MaxDepth: 5, MinLeaf: 3})
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	b, err := Fit(states, 3, labels, 3, FitConfig{MaxDepth: 5, MinLeaf: 3})
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("fit is not deterministic for identical input")
	}
}

func TestFitRejectsBadInput(t *testing.T) {
	if _, err := Fit(nil, 2, nil, 2, FitConfig{}); err == nil {
		t.Fatal("empty fit accepted")
	}
	if _, err := Fit([]float64{1, 2, 3}, 2, []int{0}, 2, FitConfig{}); err == nil {
		t.Fatal("ragged states accepted")
	}
	if _, err := Fit([]float64{1, 2}, 2, []int{5}, 2, FitConfig{}); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if _, err := Fit([]float64{1, math.NaN()}, 2, []int{0}, 2, FitConfig{}); err == nil {
		t.Fatal("NaN state accepted")
	}
	if _, err := Fit([]float64{1, math.Inf(1)}, 2, []int{0}, 2, FitConfig{}); err == nil {
		t.Fatal("Inf state accepted")
	}
}

// gridStates enumerates the res^dim lattice over [0,1]^dim row-major.
func gridStates(dim, res int) []float64 {
	total := 1
	for i := 0; i < dim; i++ {
		total *= res
	}
	states := make([]float64, 0, total*dim)
	idx := make([]int, dim)
	for n := 0; n < total; n++ {
		for d := 0; d < dim; d++ {
			states = append(states, float64(idx[d])/float64(res-1))
		}
		for d := dim - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < res {
				break
			}
			idx[d] = 0
		}
	}
	return states
}

// TestFitDistillsMLPGridDifferential is the satellite pin: distill a table
// from an MLP's argmax labels over the exhaustive 4-feature state cube,
// then replay the full grid through both engines and require ≥95%
// agreement (the ISSUE's golden-workload bar, applied to the densest
// enumerable state set). Held-out generalization is checked on an offset
// grid that shares no points with the training lattice.
func TestFitDistillsMLPGridDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(907))
	const dim, res = 4, 9
	net := mlp.New(rng, mlp.SELU, dim, 32, 2)
	ref := NewMLP(net)

	train := gridStates(dim, res) // 9^4 = 6561 states
	labels := ref.ChooseBatch(train, 0, nil)
	tbl, err := Fit(train, dim, labels, 2, FitConfig{MaxDepth: 8, MinLeaf: 2})
	if err != nil {
		t.Fatalf("fit: %v", err)
	}

	rate := AgreementRate(ref, tbl, train, dim)
	t.Logf("grid agreement (train, %d states): %.4f", len(train)/dim, rate)
	if rate < 0.95 {
		t.Fatalf("grid agreement %.4f below 0.95", rate)
	}

	holdout := make([]float64, 0, len(train))
	for i := 0; i < 4000*dim; i++ {
		holdout = append(holdout, rng.Float64())
	}
	hRate := AgreementRate(ref, tbl, holdout, dim)
	t.Logf("held-out agreement (%d random states): %.4f", len(holdout)/dim, hRate)
	if hRate < 0.90 {
		t.Fatalf("held-out agreement %.4f below 0.90", hRate)
	}

	// The fitted table must stay safe and in-range under poisoned slots,
	// like the hand-built table pin.
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		for slot := 0; slot < dim; slot++ {
			state := []float64{0.3, 0.6, 0.2, 0.8}
			state[slot] = bad
			got := tbl.Eval(state)
			if got != refEval(tbl, state) {
				t.Fatalf("bad=%v slot=%d: branch-free and reference walks disagree", bad, slot)
			}
			if got < 0 || got >= tbl.Actions {
				t.Fatalf("bad=%v slot=%d: action %d out of range", bad, slot, got)
			}
		}
	}
}

// TestFitDistillsRealStateShape runs the differential at the real serving
// state shape (4 features × k=2 candidates = dim 8) with sampled states —
// the 8-cube is not enumerable — and the quantized engine alongside.
func TestFitDistillsRealStateShape(t *testing.T) {
	rng := rand.New(rand.NewSource(911))
	const dim = 8
	net := mlp.New(rng, mlp.SELU, dim, 64, 2)
	ref := NewMLP(net)

	train := make([]float64, 0, 20000*dim)
	for i := 0; i < 20000*dim; i++ {
		train = append(train, rng.Float64())
	}
	labels := ref.ChooseBatch(train, 0, nil)
	tbl, err := Fit(train, dim, labels, 2, FitConfig{MaxDepth: 8, MinLeaf: 4})
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	rate := AgreementRate(ref, tbl, train, dim)
	t.Logf("dim-8 table agreement: %.4f", rate)
	if rate < 0.95 {
		t.Fatalf("dim-8 table agreement %.4f below 0.95", rate)
	}

	qeng := NewQuant(mlp.Quantize(net))
	qRate := AgreementRate(ref, qeng, train, dim)
	t.Logf("dim-8 quant agreement: %.4f", qRate)
	if qRate < 0.99 {
		t.Fatalf("dim-8 quant agreement %.4f below 0.99", qRate)
	}
}

// TestEnginesMaskedSelection pins the masked semantics across all three
// backends: with numActions=1 every engine must return 0 regardless of
// state, matching the insert path's single-candidate case.
func TestEnginesMaskedSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	net := mlp.New(rng, mlp.SELU, 4, 8, 3)
	engines := []Engine{NewMLP(net), NewQuant(mlp.Quantize(net))}
	tbl, err := Fit(gridStates(4, 5), 4, NewMLP(net).ChooseBatch(gridStates(4, 5), 0, nil), 3, FitConfig{MaxDepth: 4, MinLeaf: 1})
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	engines = append(engines, tbl)
	for _, eng := range engines {
		for trial := 0; trial < 200; trial++ {
			state := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
			if a := eng.ChooseAction(state, 1); a != 0 {
				t.Fatalf("%s: mask 1 returned %d", eng.Kind(), a)
			}
			if a := eng.ChooseAction(state, 2); a > 1 {
				t.Fatalf("%s: mask 2 returned %d", eng.Kind(), a)
			}
			if a := eng.ChooseAction(state, 0); a < 0 || a > 2 {
				t.Fatalf("%s: unmasked returned %d", eng.Kind(), a)
			}
		}
		// Batched and single-state forms must agree.
		states := make([]float64, 0, 50*4)
		for i := 0; i < 50*4; i++ {
			states = append(states, rng.Float64())
		}
		batch := eng.ChooseBatch(states, 2, nil)
		for r := 0; r < 50; r++ {
			if one := eng.ChooseAction(states[r*4:(r+1)*4], 2); one != batch[r] {
				t.Fatalf("%s row %d: batch %d vs single %d", eng.Kind(), r, batch[r], one)
			}
		}
	}
}

func BenchmarkTableEval(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	const dim = 8
	net := mlp.New(rng, mlp.SELU, dim, 64, 2)
	ref := NewMLP(net)
	train := make([]float64, 0, 5000*dim)
	for i := 0; i < 5000*dim; i++ {
		train = append(train, rng.Float64())
	}
	tbl, err := Fit(train, dim, ref.ChooseBatch(train, 0, nil), 2, FitConfig{MaxDepth: 8, MinLeaf: 4})
	if err != nil {
		b.Fatalf("fit: %v", err)
	}
	state := train[:dim]
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += tbl.ChooseAction(state, 2)
	}
	_ = sink
}

func BenchmarkEngineChooseAction(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	const dim = 8
	net := mlp.New(rng, mlp.SELU, dim, 64, 2)
	ref := NewMLP(net)
	train := make([]float64, 0, 5000*dim)
	for i := 0; i < 5000*dim; i++ {
		train = append(train, rng.Float64())
	}
	tbl, err := Fit(train, dim, ref.ChooseBatch(train, 0, nil), 2, FitConfig{MaxDepth: 8, MinLeaf: 4})
	if err != nil {
		b.Fatalf("fit: %v", err)
	}
	engines := map[string]Engine{
		"mlp":   ref,
		"table": tbl,
		"qmlp":  NewQuant(mlp.Quantize(net)),
	}
	state := train[:dim]
	for _, name := range []string{"mlp", "table", "qmlp"} {
		eng := engines[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			sink := 0
			for i := 0; i < b.N; i++ {
				sink += eng.ChooseAction(state, 2)
			}
			_ = sink
		})
	}
}
