// Package btree implements an in-memory B+-tree over uint64 keys with
// duplicate support and ordered range scans.
//
// It is the substrate of the mapping-based spatial index family the
// RLR-Tree paper's related work describes: "the spatial dimensions are
// transformed to 1-dimensional space based on a space filling curve, and
// then the data objects can be ordered sequentially and indexed by a
// B+-Tree" (the design Microsoft SQL Server ships). internal/zindex builds
// that index on top of this package; both exist so the R-Tree variants can
// be compared against a representative of the third index category.
package btree

import (
	"fmt"
	"sort"
)

// DefaultOrder is the default maximum number of keys per node.
const DefaultOrder = 64

// item is one key with its values (duplicates of the same key are stored
// together, preserving insertion order).
type item struct {
	key    uint64
	values []any
}

// node is a B+-tree node: leaves carry items and a next pointer forming
// the ordered leaf chain; internal nodes carry separator keys and children
// (len(children) == len(keys)+1, subtree i holds keys < keys[i]).
type node struct {
	leaf     bool
	items    []item   // leaves
	keys     []uint64 // internal separators
	children []*node
	next     *node // leaf chain
}

// Tree is a B+-tree. Not safe for concurrent mutation.
type Tree struct {
	root   *node
	order  int
	size   int // stored values (duplicates counted)
	height int
}

// New returns an empty tree with the given order (max keys per node);
// order <= 0 selects DefaultOrder.
func New(order int) *Tree {
	if order <= 0 {
		order = DefaultOrder
	}
	if order < 4 {
		order = 4
	}
	return &Tree{root: &node{leaf: true}, order: order, height: 1}
}

// Len returns the number of stored values.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels.
func (t *Tree) Height() int { return t.height }

// Insert stores value under key. Duplicate keys accumulate values.
func (t *Tree) Insert(key uint64, value any) {
	t.size++
	sep, right := t.insert(t.root, key, value)
	if right != nil {
		t.root = &node{
			keys:     []uint64{sep},
			children: []*node{t.root, right},
		}
		t.height++
	}
}

// insert adds (key, value) under n and, if n split, returns the separator
// key and the new right sibling.
func (t *Tree) insert(n *node, key uint64, value any) (uint64, *node) {
	if n.leaf {
		i := sort.Search(len(n.items), func(i int) bool { return n.items[i].key >= key })
		if i < len(n.items) && n.items[i].key == key {
			n.items[i].values = append(n.items[i].values, value)
			return 0, nil
		}
		n.items = append(n.items, item{})
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = item{key: key, values: []any{value}}
		if len(n.items) <= t.order {
			return 0, nil
		}
		// Split the leaf in half; the separator is the right half's first key.
		mid := len(n.items) / 2
		right := &node{leaf: true, items: append([]item(nil), n.items[mid:]...), next: n.next}
		n.items = n.items[:mid]
		n.next = right
		return right.items[0].key, right
	}

	ci := sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
	sep, right := t.insert(n.children[ci], key, value)
	if right == nil {
		return 0, nil
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = sep
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = right
	if len(n.keys) <= t.order {
		return 0, nil
	}
	// Split the internal node; the middle key moves up.
	mid := len(n.keys) / 2
	upKey := n.keys[mid]
	rightNode := &node{
		keys:     append([]uint64(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return upKey, rightNode
}

// Delete removes one value stored under key — the first whose dynamic
// value compares equal to value with the == operator (pointer identity
// for pointer values, value equality for comparables) — and reports
// whether anything was removed. Nodes that underflow below half fill
// rebalance by borrowing from an adjacent sibling or merging with it,
// exactly mirroring Insert's split discipline, so a long churn of
// interleaved inserts and deletes keeps the tree's height and fill
// bounds intact (the property suite pins this against a sorted-map
// oracle). Deleting with an incomparable value type (slices, maps)
// panics, the same contract as using such a value as a map key.
func (t *Tree) Delete(key uint64, value any) bool {
	if !t.delete(t.root, key, value) {
		return false
	}
	t.size--
	// An internal root left with a single child shrinks the tree.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
		t.height--
	}
	return true
}

// minFill is the underflow threshold: leaves rebalance below minFill
// items, internal nodes below minFill keys. Insert splits an
// over-capacity node in half, so both split halves start at or above
// this bound; the root is exempt as usual.
func (t *Tree) minFill() int { return t.order / 2 }

// delete removes (key, value) from the subtree under n, rebalancing any
// child it shrank below the fill bound.
func (t *Tree) delete(n *node, key uint64, value any) bool {
	if n.leaf {
		i := sort.Search(len(n.items), func(i int) bool { return n.items[i].key >= key })
		if i >= len(n.items) || n.items[i].key != key {
			return false
		}
		it := &n.items[i]
		for j, v := range it.values {
			if v != value {
				continue
			}
			it.values = append(it.values[:j], it.values[j+1:]...)
			if len(it.values) == 0 {
				n.items = append(n.items[:i], n.items[i+1:]...)
			}
			return true
		}
		return false
	}
	ci := sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
	if !t.delete(n.children[ci], key, value) {
		return false
	}
	t.rebalance(n, ci)
	return true
}

// underfull reports whether ch is below the fill bound.
func (t *Tree) underfull(ch *node) bool {
	if ch.leaf {
		return len(ch.items) < t.minFill()
	}
	return len(ch.keys) < t.minFill()
}

// canLend reports whether ch can give up one item/key and stay legal.
func (t *Tree) canLend(ch *node) bool {
	if ch.leaf {
		return len(ch.items) > t.minFill()
	}
	return len(ch.keys) > t.minFill()
}

// rebalance restores n.children[ci]'s fill bound after a removal below
// it: borrow one entry from an adjacent sibling when that sibling can
// spare it, otherwise merge with one (which may in turn underfill n —
// the caller's own rebalance handles that on the way up).
func (t *Tree) rebalance(n *node, ci int) {
	ch := n.children[ci]
	if !t.underfull(ch) {
		return
	}
	if ci > 0 && t.canLend(n.children[ci-1]) {
		t.borrowLeft(n, ci)
		return
	}
	if ci < len(n.children)-1 && t.canLend(n.children[ci+1]) {
		t.borrowRight(n, ci)
		return
	}
	// Neither neighbor can lend, so one of them sits exactly at the fill
	// bound and the merged node fits: minFill + (minFill-1) <= order.
	if ci > 0 {
		t.merge(n, ci-1)
	} else {
		t.merge(n, ci)
	}
}

// borrowLeft moves the left sibling's last entry into n.children[ci].
func (t *Tree) borrowLeft(n *node, ci int) {
	left, ch := n.children[ci-1], n.children[ci]
	if ch.leaf {
		last := left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		ch.items = append(ch.items, item{})
		copy(ch.items[1:], ch.items)
		ch.items[0] = last
		n.keys[ci-1] = last.key
		return
	}
	// Rotate through the parent: the separator drops into ch, the left
	// sibling's last key replaces it, and its last child changes sides.
	ch.keys = append(ch.keys, 0)
	copy(ch.keys[1:], ch.keys)
	ch.keys[0] = n.keys[ci-1]
	n.keys[ci-1] = left.keys[len(left.keys)-1]
	left.keys = left.keys[:len(left.keys)-1]
	moved := left.children[len(left.children)-1]
	left.children = left.children[:len(left.children)-1]
	ch.children = append(ch.children, nil)
	copy(ch.children[1:], ch.children)
	ch.children[0] = moved
}

// borrowRight moves the right sibling's first entry into n.children[ci].
func (t *Tree) borrowRight(n *node, ci int) {
	ch, right := n.children[ci], n.children[ci+1]
	if ch.leaf {
		first := right.items[0]
		right.items = append(right.items[:0], right.items[1:]...)
		ch.items = append(ch.items, first)
		n.keys[ci] = right.items[0].key
		return
	}
	ch.keys = append(ch.keys, n.keys[ci])
	n.keys[ci] = right.keys[0]
	right.keys = append(right.keys[:0], right.keys[1:]...)
	ch.children = append(ch.children, right.children[0])
	right.children = append(right.children[:0], right.children[1:]...)
}

// merge folds n.children[i+1] into n.children[i] and drops separator
// n.keys[i]. For leaves the leaf chain is re-linked past the absorbed
// right sibling; for internal nodes the separator moves down between the
// two key runs.
func (t *Tree) merge(n *node, i int) {
	left, right := n.children[i], n.children[i+1]
	if left.leaf {
		left.items = append(left.items, right.items...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, n.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// ScanStats reports the work of one range scan: node accesses follow the
// same convention as the R-Tree's QueryStats (every visited node counts).
type ScanStats struct {
	NodesAccessed int
	Results       int
}

// ScanRange invokes fn for every value whose key lies in [lo, hi], in key
// order (insertion order within a key). fn returning false stops the scan.
func (t *Tree) ScanRange(lo, hi uint64, fn func(key uint64, value any) bool) ScanStats {
	var stats ScanStats
	if lo > hi {
		return stats
	}
	// Descend to the leaf that may contain lo.
	n := t.root
	for !n.leaf {
		stats.NodesAccessed++
		ci := sort.Search(len(n.keys), func(i int) bool { return lo < n.keys[i] })
		n = n.children[ci]
	}
	// Walk the leaf chain.
	for n != nil {
		stats.NodesAccessed++
		for i := range n.items {
			it := &n.items[i]
			if it.key < lo {
				continue
			}
			if it.key > hi {
				return stats
			}
			for _, v := range it.values {
				stats.Results++
				if !fn(it.key, v) {
					return stats
				}
			}
		}
		n = n.next
	}
	return stats
}

// Get returns the values stored under key.
func (t *Tree) Get(key uint64) []any {
	var out []any
	t.ScanRange(key, key, func(_ uint64, v any) bool {
		out = append(out, v)
		return true
	})
	return out
}

// NodeCount returns the total number of nodes.
func (t *Tree) NodeCount() int {
	var count func(n *node) int
	count = func(n *node) int {
		c := 1
		for _, ch := range n.children {
			c += count(ch)
		}
		return c
	}
	return count(t.root)
}

// Validate checks the structural invariants: key ordering within and
// across nodes, child counts, uniform leaf depth, and the leaf chain
// covering all items in order.
func (t *Tree) Validate() error {
	depth := -1
	var prevKey *uint64
	var walk func(n *node, level int, lower, upper *uint64) error
	walk = func(n *node, level int, lower, upper *uint64) error {
		if n.leaf {
			if depth == -1 {
				depth = level
			} else if depth != level {
				return fmt.Errorf("btree: leaves at depths %d and %d", depth, level)
			}
			for i := range n.items {
				k := n.items[i].key
				if i > 0 && n.items[i-1].key >= k {
					return fmt.Errorf("btree: leaf keys out of order")
				}
				if lower != nil && k < *lower {
					return fmt.Errorf("btree: key %d below lower bound %d", k, *lower)
				}
				if upper != nil && k >= *upper {
					return fmt.Errorf("btree: key %d at/above upper bound %d", k, *upper)
				}
				if prevKey != nil && *prevKey >= k {
					return fmt.Errorf("btree: global key order violated at %d", k)
				}
				kk := k
				prevKey = &kk
				if len(n.items[i].values) == 0 {
					return fmt.Errorf("btree: key %d has no values", k)
				}
			}
			return nil
		}
		if len(n.children) != len(n.keys)+1 {
			return fmt.Errorf("btree: %d children for %d keys", len(n.children), len(n.keys))
		}
		for i := range n.keys {
			if i > 0 && n.keys[i-1] >= n.keys[i] {
				return fmt.Errorf("btree: separators out of order")
			}
		}
		for i, ch := range n.children {
			lo, hi := lower, upper
			if i > 0 {
				lo = &n.keys[i-1]
			}
			if i < len(n.keys) {
				hi = &n.keys[i]
			}
			if err := walk(ch, level+1, lo, hi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 1, nil, nil); err != nil {
		return err
	}
	// The leaf chain must enumerate exactly size values in order.
	total := 0
	t.ScanRange(0, ^uint64(0), func(uint64, any) bool { total++; return true })
	if total != t.size {
		return fmt.Errorf("btree: chain enumerates %d values, size is %d", total, t.size)
	}
	return nil
}
