// Package btree implements an in-memory B+-tree over uint64 keys with
// duplicate support and ordered range scans.
//
// It is the substrate of the mapping-based spatial index family the
// RLR-Tree paper's related work describes: "the spatial dimensions are
// transformed to 1-dimensional space based on a space filling curve, and
// then the data objects can be ordered sequentially and indexed by a
// B+-Tree" (the design Microsoft SQL Server ships). internal/zindex builds
// that index on top of this package; both exist so the R-Tree variants can
// be compared against a representative of the third index category.
package btree

import (
	"fmt"
	"sort"
)

// DefaultOrder is the default maximum number of keys per node.
const DefaultOrder = 64

// item is one key with its values (duplicates of the same key are stored
// together, preserving insertion order).
type item struct {
	key    uint64
	values []any
}

// node is a B+-tree node: leaves carry items and a next pointer forming
// the ordered leaf chain; internal nodes carry separator keys and children
// (len(children) == len(keys)+1, subtree i holds keys < keys[i]).
type node struct {
	leaf     bool
	items    []item   // leaves
	keys     []uint64 // internal separators
	children []*node
	next     *node // leaf chain
}

// Tree is a B+-tree. Not safe for concurrent mutation.
type Tree struct {
	root   *node
	order  int
	size   int // stored values (duplicates counted)
	height int
}

// New returns an empty tree with the given order (max keys per node);
// order <= 0 selects DefaultOrder.
func New(order int) *Tree {
	if order <= 0 {
		order = DefaultOrder
	}
	if order < 4 {
		order = 4
	}
	return &Tree{root: &node{leaf: true}, order: order, height: 1}
}

// Len returns the number of stored values.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels.
func (t *Tree) Height() int { return t.height }

// Insert stores value under key. Duplicate keys accumulate values.
func (t *Tree) Insert(key uint64, value any) {
	t.size++
	sep, right := t.insert(t.root, key, value)
	if right != nil {
		t.root = &node{
			keys:     []uint64{sep},
			children: []*node{t.root, right},
		}
		t.height++
	}
}

// insert adds (key, value) under n and, if n split, returns the separator
// key and the new right sibling.
func (t *Tree) insert(n *node, key uint64, value any) (uint64, *node) {
	if n.leaf {
		i := sort.Search(len(n.items), func(i int) bool { return n.items[i].key >= key })
		if i < len(n.items) && n.items[i].key == key {
			n.items[i].values = append(n.items[i].values, value)
			return 0, nil
		}
		n.items = append(n.items, item{})
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = item{key: key, values: []any{value}}
		if len(n.items) <= t.order {
			return 0, nil
		}
		// Split the leaf in half; the separator is the right half's first key.
		mid := len(n.items) / 2
		right := &node{leaf: true, items: append([]item(nil), n.items[mid:]...), next: n.next}
		n.items = n.items[:mid]
		n.next = right
		return right.items[0].key, right
	}

	ci := sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
	sep, right := t.insert(n.children[ci], key, value)
	if right == nil {
		return 0, nil
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = sep
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = right
	if len(n.keys) <= t.order {
		return 0, nil
	}
	// Split the internal node; the middle key moves up.
	mid := len(n.keys) / 2
	upKey := n.keys[mid]
	rightNode := &node{
		keys:     append([]uint64(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return upKey, rightNode
}

// ScanStats reports the work of one range scan: node accesses follow the
// same convention as the R-Tree's QueryStats (every visited node counts).
type ScanStats struct {
	NodesAccessed int
	Results       int
}

// ScanRange invokes fn for every value whose key lies in [lo, hi], in key
// order (insertion order within a key). fn returning false stops the scan.
func (t *Tree) ScanRange(lo, hi uint64, fn func(key uint64, value any) bool) ScanStats {
	var stats ScanStats
	if lo > hi {
		return stats
	}
	// Descend to the leaf that may contain lo.
	n := t.root
	for !n.leaf {
		stats.NodesAccessed++
		ci := sort.Search(len(n.keys), func(i int) bool { return lo < n.keys[i] })
		n = n.children[ci]
	}
	// Walk the leaf chain.
	for n != nil {
		stats.NodesAccessed++
		for i := range n.items {
			it := &n.items[i]
			if it.key < lo {
				continue
			}
			if it.key > hi {
				return stats
			}
			for _, v := range it.values {
				stats.Results++
				if !fn(it.key, v) {
					return stats
				}
			}
		}
		n = n.next
	}
	return stats
}

// Get returns the values stored under key.
func (t *Tree) Get(key uint64) []any {
	var out []any
	t.ScanRange(key, key, func(_ uint64, v any) bool {
		out = append(out, v)
		return true
	})
	return out
}

// NodeCount returns the total number of nodes.
func (t *Tree) NodeCount() int {
	var count func(n *node) int
	count = func(n *node) int {
		c := 1
		for _, ch := range n.children {
			c += count(ch)
		}
		return c
	}
	return count(t.root)
}

// Validate checks the structural invariants: key ordering within and
// across nodes, child counts, uniform leaf depth, and the leaf chain
// covering all items in order.
func (t *Tree) Validate() error {
	depth := -1
	var prevKey *uint64
	var walk func(n *node, level int, lower, upper *uint64) error
	walk = func(n *node, level int, lower, upper *uint64) error {
		if n.leaf {
			if depth == -1 {
				depth = level
			} else if depth != level {
				return fmt.Errorf("btree: leaves at depths %d and %d", depth, level)
			}
			for i := range n.items {
				k := n.items[i].key
				if i > 0 && n.items[i-1].key >= k {
					return fmt.Errorf("btree: leaf keys out of order")
				}
				if lower != nil && k < *lower {
					return fmt.Errorf("btree: key %d below lower bound %d", k, *lower)
				}
				if upper != nil && k >= *upper {
					return fmt.Errorf("btree: key %d at/above upper bound %d", k, *upper)
				}
				if prevKey != nil && *prevKey >= k {
					return fmt.Errorf("btree: global key order violated at %d", k)
				}
				kk := k
				prevKey = &kk
				if len(n.items[i].values) == 0 {
					return fmt.Errorf("btree: key %d has no values", k)
				}
			}
			return nil
		}
		if len(n.children) != len(n.keys)+1 {
			return fmt.Errorf("btree: %d children for %d keys", len(n.children), len(n.keys))
		}
		for i := range n.keys {
			if i > 0 && n.keys[i-1] >= n.keys[i] {
				return fmt.Errorf("btree: separators out of order")
			}
		}
		for i, ch := range n.children {
			lo, hi := lower, upper
			if i > 0 {
				lo = &n.keys[i-1]
			}
			if i < len(n.keys) {
				hi = &n.keys[i]
			}
			if err := walk(ch, level+1, lo, hi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 1, nil, nil); err != nil {
		return err
	}
	// The leaf chain must enumerate exactly size values in order.
	total := 0
	t.ScanRange(0, ^uint64(0), func(uint64, any) bool { total++; return true })
	if total != t.size {
		return fmt.Errorf("btree: chain enumerates %d values, size is %d", total, t.size)
	}
	return nil
}
