package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	bt := New(0)
	if bt.Len() != 0 || bt.Height() != 1 {
		t.Fatalf("empty tree: len=%d h=%d", bt.Len(), bt.Height())
	}
	if err := bt.Validate(); err != nil {
		t.Fatal(err)
	}
	stats := bt.ScanRange(0, ^uint64(0), func(uint64, any) bool { return true })
	if stats.Results != 0 {
		t.Fatalf("empty scan found %d", stats.Results)
	}
	if got := bt.Get(42); got != nil {
		t.Fatalf("Get on empty tree: %v", got)
	}
}

func TestInsertAndScanOrdered(t *testing.T) {
	bt := New(8)
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 5000)
	for i := range keys {
		keys[i] = rng.Uint64() % 100000
		bt.Insert(keys[i], i)
	}
	if bt.Len() != len(keys) {
		t.Fatalf("Len = %d", bt.Len())
	}
	if err := bt.Validate(); err != nil {
		t.Fatal(err)
	}
	if bt.Height() < 3 {
		t.Fatalf("expected height >= 3 at order 8, got %d", bt.Height())
	}

	// A full scan enumerates all values in nondecreasing key order.
	var scanned []uint64
	bt.ScanRange(0, ^uint64(0), func(k uint64, _ any) bool {
		scanned = append(scanned, k)
		return true
	})
	if len(scanned) != len(keys) {
		t.Fatalf("scan found %d of %d", len(scanned), len(keys))
	}
	if !sort.SliceIsSorted(scanned, func(i, j int) bool { return scanned[i] < scanned[j] }) {
		t.Fatalf("scan out of order")
	}
}

func TestScanRangeMatchesBruteForce(t *testing.T) {
	bt := New(16)
	rng := rand.New(rand.NewSource(2))
	keys := make([]uint64, 3000)
	for i := range keys {
		keys[i] = rng.Uint64() % 10000
		bt.Insert(keys[i], i)
	}
	for trial := 0; trial < 50; trial++ {
		lo := rng.Uint64() % 10000
		hi := lo + rng.Uint64()%2000
		want := 0
		for _, k := range keys {
			if k >= lo && k <= hi {
				want++
			}
		}
		got := 0
		stats := bt.ScanRange(lo, hi, func(k uint64, _ any) bool {
			if k < lo || k > hi {
				t.Fatalf("scan leaked key %d outside [%d,%d]", k, lo, hi)
			}
			got++
			return true
		})
		if got != want || stats.Results != want {
			t.Fatalf("[%d,%d]: got %d (stats %d), want %d", lo, hi, got, stats.Results, want)
		}
		if stats.NodesAccessed == 0 {
			t.Fatalf("no node accesses recorded")
		}
	}
	// Inverted and empty ranges.
	if s := bt.ScanRange(10, 5, func(uint64, any) bool { return true }); s.Results != 0 {
		t.Fatalf("inverted range returned results")
	}
}

func TestDuplicatesAndEarlyStop(t *testing.T) {
	bt := New(4)
	for i := 0; i < 10; i++ {
		bt.Insert(7, i)
	}
	bt.Insert(3, "three")
	bt.Insert(9, "nine")
	if got := bt.Get(7); len(got) != 10 {
		t.Fatalf("Get(7) = %d values", len(got))
	}
	// Insertion order is preserved for duplicates.
	for i, v := range bt.Get(7) {
		if v.(int) != i {
			t.Fatalf("duplicate order broken at %d: %v", i, v)
		}
	}
	// Early termination stops the scan.
	count := 0
	bt.ScanRange(0, 100, func(uint64, any) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop scanned %d", count)
	}
	if err := bt.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialAndReverseInsertion(t *testing.T) {
	for name, gen := range map[string]func(i int) uint64{
		"ascending":  func(i int) uint64 { return uint64(i) },
		"descending": func(i int) uint64 { return uint64(10000 - i) },
	} {
		bt := New(6)
		for i := 0; i < 5000; i++ {
			bt.Insert(gen(i), i)
		}
		if err := bt.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestQuickRandomWorkloads(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := 4 + rng.Intn(60)
		bt := New(order)
		n := 100 + rng.Intn(2000)
		counts := map[uint64]int{}
		for i := 0; i < n; i++ {
			k := rng.Uint64() % uint64(50+rng.Intn(5000))
			bt.Insert(k, i)
			counts[k]++
		}
		if bt.Validate() != nil || bt.Len() != n {
			return false
		}
		// Spot-check ten random keys.
		for k, c := range counts {
			if len(bt.Get(k)) != c {
				return false
			}
			break
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeCountGrows(t *testing.T) {
	bt := New(8)
	if bt.NodeCount() != 1 {
		t.Fatalf("fresh tree has %d nodes", bt.NodeCount())
	}
	for i := 0; i < 1000; i++ {
		bt.Insert(uint64(i), i)
	}
	if bt.NodeCount() < 100 {
		t.Fatalf("1000 keys at order 8 in only %d nodes", bt.NodeCount())
	}
}
