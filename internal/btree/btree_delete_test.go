package btree

import (
	"math/rand"
	"testing"
)

// oracleMap is the reference model for the property suite: a plain map
// of key → values in insertion order, scanned brute-force.
type oracleMap map[uint64][]int

func (o oracleMap) insert(k uint64, v int) { o[k] = append(o[k], v) }

func (o oracleMap) delete(k uint64, v int) bool {
	vals := o[k]
	for i, got := range vals {
		if got == v {
			o[k] = append(vals[:i], vals[i+1:]...)
			if len(o[k]) == 0 {
				delete(o, k)
			}
			return true
		}
	}
	return false
}

// pairs flattens the oracle into ScanRange order: ascending key, values
// in insertion order.
func (o oracleMap) pairs() []struct {
	k uint64
	v int
} {
	var out []struct {
		k uint64
		v int
	}
	keys := make([]uint64, 0, len(o))
	for k := range o {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j-1] > keys[j]; j-- {
			keys[j-1], keys[j] = keys[j], keys[j-1]
		}
	}
	for _, k := range keys {
		for _, v := range o[k] {
			out = append(out, struct {
				k uint64
				v int
			}{k, v})
		}
	}
	return out
}

func compareWithOracle(t *testing.T, tree *Tree, oracle oracleMap, step int) {
	t.Helper()
	if err := tree.Validate(); err != nil {
		t.Fatalf("step %d: invariants broken after delete churn: %v", step, err)
	}
	want := oracle.pairs()
	if tree.Len() != len(want) {
		t.Fatalf("step %d: Len %d, oracle holds %d values", step, tree.Len(), len(want))
	}
	i := 0
	tree.ScanRange(0, ^uint64(0), func(k uint64, v any) bool {
		if i >= len(want) {
			t.Fatalf("step %d: scan yielded more than the oracle's %d values", step, len(want))
		}
		if k != want[i].k || v.(int) != want[i].v {
			t.Fatalf("step %d: scan[%d] = (%d, %v), oracle has (%d, %d)", step, i, k, v, want[i].k, want[i].v)
		}
		i++
		return true
	})
	if i != len(want) {
		t.Fatalf("step %d: scan yielded %d values, oracle holds %d", step, i, len(want))
	}
}

// TestDeletePropertyOracle drives 10K randomized Insert/Delete ops
// (including duplicate keys, repeated values under one key, and deletes
// of absent keys/values) against the sorted-map oracle, validating the
// full invariant set and the complete scan order after every batch.
// Small orders force deep trees so borrow and merge paths fire on both
// leaf and internal levels.
func TestDeletePropertyOracle(t *testing.T) {
	for _, order := range []int{4, 8, DefaultOrder} {
		rng := rand.New(rand.NewSource(int64(order) * 7919))
		tree := New(order)
		oracle := oracleMap{}
		nextVal := 0
		// Small key range relative to op count → plenty of duplicates.
		keyOf := func() uint64 { return uint64(rng.Intn(600)) }

		const ops = 10_000
		for i := 0; i < ops; i++ {
			switch r := rng.Float64(); {
			case r < 0.55:
				k, v := keyOf(), nextVal
				nextVal++
				tree.Insert(k, v)
				oracle.insert(k, v)
			case r < 0.95:
				// Delete a value that exists: pick a live key, then one of
				// its values (map iteration order is fine — any live pair).
				var k uint64
				var v int
				found := false
				for kk, vals := range oracle {
					k, v = kk, vals[rng.Intn(len(vals))]
					found = true
					break
				}
				if !found {
					continue
				}
				if !tree.Delete(k, v) {
					t.Fatalf("op %d: Delete(%d, %d) missed a live value (order %d)", i, k, v, order)
				}
				if !oracle.delete(k, v) {
					t.Fatalf("op %d: oracle desync on (%d, %d)", i, k, v)
				}
			default:
				// Deletes that must miss: absent key, and live key with a
				// value never inserted.
				k := keyOf()
				if tree.Delete(k, -1) {
					t.Fatalf("op %d: Delete(%d, -1) removed a value that was never inserted", i, k)
				}
				if tree.Delete(^uint64(0)-uint64(rng.Intn(100)), 0) {
					t.Fatalf("op %d: delete of absent key succeeded", i)
				}
			}
			if i%500 == 499 {
				compareWithOracle(t, tree, oracle, i)
			}
		}
		// Drain everything: the tree must come back to empty with clean
		// invariants the whole way down.
		for k, vals := range oracle {
			for _, v := range vals {
				if !tree.Delete(k, v) {
					t.Fatalf("drain: Delete(%d, %d) missed (order %d)", k, v, order)
				}
			}
			delete(oracle, k)
		}
		compareWithOracle(t, tree, oracle, ops)
		if tree.Len() != 0 || tree.Height() != 1 {
			t.Fatalf("drained tree: Len %d, Height %d; want 0, 1 (order %d)", tree.Len(), tree.Height(), order)
		}
	}
}

// TestDeleteLeafChainAfterMerge pins the leaf-chain relink: delete a
// dense run so leaves merge, then verify the chain still enumerates
// every survivor in order (Validate checks this too; the scan here makes
// the failure readable).
func TestDeleteLeafChainAfterMerge(t *testing.T) {
	tree := New(4)
	const n = 200
	for i := 0; i < n; i++ {
		tree.Insert(uint64(i), i)
	}
	for i := 40; i < 160; i++ {
		if !tree.Delete(uint64(i), i) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	tree.ScanRange(0, ^uint64(0), func(k uint64, _ any) bool {
		got = append(got, k)
		return true
	})
	want := make([]uint64, 0, 80)
	for i := 0; i < 40; i++ {
		want = append(want, uint64(i))
	}
	for i := 160; i < n; i++ {
		want = append(want, uint64(i))
	}
	if len(got) != len(want) {
		t.Fatalf("chain enumerates %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("chain[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}
