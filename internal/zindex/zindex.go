// Package zindex implements the mapping-based spatial index of the
// RLR-Tree paper's related-work taxonomy: points are mapped to a Z-order
// (Morton) key and stored in a B+-tree, and a range query is answered by
// decomposing the query window into quadtree-aligned cells — each of which
// is a contiguous key interval — scanning those intervals, and filtering.
//
// The package exists as a comparison baseline for the R-Tree family and to
// demonstrate, in running code, the limitations the paper attributes to
// this family: only point objects are supported, every query type needs a
// bespoke algorithm (only range queries are provided here), and query cost
// depends on how well the curve decomposition fits the window.
package zindex

import (
	"fmt"

	"github.com/rlr-tree/rlrtree/internal/btree"
	"github.com/rlr-tree/rlrtree/internal/geom"
	"github.com/rlr-tree/rlrtree/internal/sfc"
)

// DefaultMaxRanges bounds the number of key intervals a query window is
// decomposed into. More ranges mean fewer false positives but more B+-tree
// descents; 64 is a conventional sweet spot.
const DefaultMaxRanges = 64

// Index is a Z-order point index backed by a B+-tree.
type Index struct {
	bt        *btree.Tree
	world     geom.Rect
	maxRanges int
	size      int
}

// entry is what the B+-tree stores: the exact point plus the payload, so
// candidates from a covering interval can be filtered exactly.
type entry struct {
	p    geom.Point
	data any
}

// Options configures an Index.
type Options struct {
	// World is the fixed key space; points outside are clamped onto its
	// boundary cells (mapping-based indexes need the frame up front — one
	// of the family's deployment constraints).
	World geom.Rect
	// Order is the B+-tree order (default btree.DefaultOrder).
	Order int
	// MaxRanges bounds the query decomposition (default DefaultMaxRanges).
	MaxRanges int
}

// New returns an empty index over the given world rectangle.
func New(opts Options) (*Index, error) {
	if !opts.World.Valid() || opts.World.Area() == 0 {
		return nil, fmt.Errorf("zindex: World must be a valid non-degenerate rect, got %v", opts.World)
	}
	if opts.MaxRanges == 0 {
		opts.MaxRanges = DefaultMaxRanges
	}
	if opts.MaxRanges < 1 {
		return nil, fmt.Errorf("zindex: MaxRanges must be >= 1, got %d", opts.MaxRanges)
	}
	return &Index{
		bt:        btree.New(opts.Order),
		world:     opts.World,
		maxRanges: opts.MaxRanges,
	}, nil
}

// Len returns the number of stored points.
func (ix *Index) Len() int { return ix.size }

// Insert stores a point with its payload.
func (ix *Index) Insert(p geom.Point, data any) {
	ix.bt.Insert(sfc.ZOrderKey(p, ix.world), entry{p: p, data: data})
	ix.size++
}

// QueryStats reports the work of one range query. NodesAccessed counts
// B+-tree node visits (comparable to the R-Tree metric); Candidates counts
// the points inspected before exact filtering — the family's overhead.
type QueryStats struct {
	NodesAccessed int
	Candidates    int
	Ranges        int
	Results       int
}

// RangeSearch returns the payloads of all points inside q.
func (ix *Index) RangeSearch(q geom.Rect) ([]any, QueryStats) {
	var out []any
	stats := ix.rangeSearch(q, func(data any) { out = append(out, data) })
	stats.Results = len(out)
	return out, stats
}

// RangeCount counts points inside q without materializing results.
func (ix *Index) RangeCount(q geom.Rect) QueryStats {
	stats := ix.rangeSearch(q, func(any) {})
	return stats
}

func (ix *Index) rangeSearch(q geom.Rect, emit func(any)) QueryStats {
	var stats QueryStats
	inter, ok := q.Intersection(ix.world)
	if !ok {
		return stats
	}
	// Quantize the query window to grid cells.
	loX, loY := sfc.Quantize(geom.Pt(inter.MinX, inter.MinY), ix.world)
	hiX, hiY := sfc.Quantize(geom.Pt(inter.MaxX, inter.MaxY), ix.world)

	ranges := decompose(loX, loY, hiX, hiY, ix.maxRanges)
	stats.Ranges = len(ranges)
	for _, r := range ranges {
		s := ix.bt.ScanRange(r.lo, r.hi, func(_ uint64, v any) bool {
			e := v.(entry)
			stats.Candidates++
			if q.ContainsPoint(e.p) {
				stats.Results++
				emit(e.data)
			}
			return true
		})
		stats.NodesAccessed += s.NodesAccessed
	}
	return stats
}

// zrange is one contiguous Morton-key interval.
type zrange struct{ lo, hi uint64 }

// decompose covers the grid window [loX,hiX]×[loY,hiY] with at most
// maxRanges quadtree-aligned key intervals. It recursively subdivides the
// grid; a cell fully inside the window — or any cell once the budget is
// exhausted — contributes its whole interval (over-covering is corrected
// by the exact point filter).
func decompose(loX, loY, hiX, hiY uint32, maxRanges int) []zrange {
	type cell struct {
		x, y uint32 // min corner, multiples of size
		size uint32 // cells per side, power of two
	}
	var out []zrange
	budgetExceeded := false
	var visit func(c cell)
	visit = func(c cell) {
		cx2 := c.x + c.size - 1
		cy2 := c.y + c.size - 1
		if c.x > hiX || cx2 < loX || c.y > hiY || cy2 < loY {
			return // disjoint
		}
		fullyInside := c.x >= loX && cx2 <= hiX && c.y >= loY && cy2 <= hiY
		if fullyInside || c.size == 1 || budgetExceeded || len(out) >= maxRanges {
			base := sfc.ZOrderXY2D(c.x, c.y)
			span := uint64(c.size) * uint64(c.size)
			out = append(out, zrange{lo: base, hi: base + span - 1})
			if len(out) >= maxRanges {
				budgetExceeded = true
			}
			return
		}
		h := c.size / 2
		// Children in Z order keeps the emitted ranges sorted and
		// mergeable.
		visit(cell{c.x, c.y, h})
		visit(cell{c.x + h, c.y, h})
		visit(cell{c.x, c.y + h, h})
		visit(cell{c.x + h, c.y + h, h})
	}
	visit(cell{0, 0, 1 << sfc.Order})

	// Merge adjacent intervals to cut B+-tree descents.
	merged := out[:0]
	for _, r := range out {
		if n := len(merged); n > 0 && merged[n-1].hi+1 == r.lo {
			merged[n-1].hi = r.hi
			continue
		}
		merged = append(merged, r)
	}
	return merged
}
