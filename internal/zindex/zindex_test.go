package zindex

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/rlr-tree/rlrtree/internal/dataset"
	"github.com/rlr-tree/rlrtree/internal/geom"
	"github.com/rlr-tree/rlrtree/internal/rtree"
)

func unitWorld() geom.Rect { return geom.NewRect(0, 0, 1, 1) }

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{World: geom.Rect{MinX: 1, MaxX: 0}}); err == nil {
		t.Fatal("invalid world accepted")
	}
	if _, err := New(Options{World: geom.NewRect(0, 0, 0, 1)}); err == nil {
		t.Fatal("degenerate world accepted")
	}
	if _, err := New(Options{World: unitWorld(), MaxRanges: -1}); err == nil {
		t.Fatal("negative MaxRanges accepted")
	}
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	ix, err := New(Options{World: unitWorld()})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 5000)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
		ix.Insert(pts[i], i)
	}
	if ix.Len() != len(pts) {
		t.Fatalf("Len = %d", ix.Len())
	}
	for trial := 0; trial < 60; trial++ {
		q := geom.Square(rng.Float64(), rng.Float64(), 0.02+0.15*rng.Float64())
		got, stats := ix.RangeSearch(q)
		var want []int
		for i, p := range pts {
			if q.ContainsPoint(p) {
				want = append(want, i)
			}
		}
		ids := make([]int, len(got))
		for i, v := range got {
			ids[i] = v.(int)
		}
		sort.Ints(ids)
		if len(ids) != len(want) {
			t.Fatalf("query %v: got %d, want %d", q, len(ids), len(want))
		}
		for i := range ids {
			if ids[i] != want[i] {
				t.Fatalf("query %v: result mismatch at %d", q, i)
			}
		}
		if stats.Results != len(want) || stats.Candidates < stats.Results {
			t.Fatalf("bad stats %+v for %d results", stats, len(want))
		}
		if stats.Ranges < 1 {
			t.Fatalf("no decomposition ranges")
		}
	}
}

func TestQueryOutsideWorld(t *testing.T) {
	ix, _ := New(Options{World: unitWorld()})
	ix.Insert(geom.Pt(0.5, 0.5), "x")
	got, stats := ix.RangeSearch(geom.NewRect(2, 2, 3, 3))
	if len(got) != 0 || stats.NodesAccessed != 0 {
		t.Fatalf("disjoint query did work: %v %+v", got, stats)
	}
	// A query covering the whole world returns everything.
	got, _ = ix.RangeSearch(geom.NewRect(-1, -1, 2, 2))
	if len(got) != 1 {
		t.Fatalf("covering query found %d", len(got))
	}
}

func TestDecompositionBudget(t *testing.T) {
	// A thin diagonal-ish window forces many cells; the budget must keep
	// the decomposition bounded while staying correct.
	ix, err := New(Options{World: unitWorld(), MaxRanges: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	pts := make([]geom.Point, 3000)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
		ix.Insert(pts[i], i)
	}
	q := geom.NewRect(0.101, 0.303, 0.707, 0.404)
	got, stats := ix.RangeSearch(q)
	want := 0
	for _, p := range pts {
		if q.ContainsPoint(p) {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("budgeted decomposition lost results: %d vs %d", len(got), want)
	}
	// The budget may be slightly overshot by in-flight recursion but must
	// stay the same order of magnitude.
	if stats.Ranges > 8+3*64 {
		t.Fatalf("decomposition exploded: %d ranges", stats.Ranges)
	}
}

func TestTighterDecompositionReducesCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	build := func(maxRanges int) (*Index, geom.Rect) {
		ix, err := New(Options{World: unitWorld(), MaxRanges: maxRanges})
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(4))
		for i := 0; i < 8000; i++ {
			ix.Insert(geom.Pt(r.Float64(), r.Float64()), i)
		}
		return ix, geom.Square(0.3+0.4*rng.Float64(), 0.3+0.4*rng.Float64(), 0.09)
	}
	coarse, q := build(1)
	fine, _ := build(256)
	_, cs := coarse.RangeCount(q), 0
	_ = cs
	sCoarse := coarse.RangeCount(q)
	sFine := fine.RangeCount(q)
	if sFine.Results != sCoarse.Results {
		t.Fatalf("results differ across budgets: %d vs %d", sFine.Results, sCoarse.Results)
	}
	if sFine.Candidates > sCoarse.Candidates {
		t.Fatalf("finer decomposition inspected more candidates: %d > %d", sFine.Candidates, sCoarse.Candidates)
	}
}

// TestComparisonWithRTree documents the family comparison the paper makes:
// both indexes return identical results; the Z-order index inspects
// candidate points outside the window (false positives of the curve
// mapping), which the R-Tree does not.
func TestComparisonWithRTree(t *testing.T) {
	data := dataset.MustGenerate(dataset.CHI, 8000, 5)
	ix, err := New(Options{World: unitWorld()})
	if err != nil {
		t.Fatal(err)
	}
	rt := rtree.New(rtree.Options{MaxEntries: 50, MinEntries: 20})
	for i, r := range data {
		ix.Insert(r.Center(), i)
		rt.Insert(r, i)
	}
	queries := dataset.RangeQueries(100, 0.001, unitWorld(), 6)
	var zCand, zRes, rRes int
	for _, q := range queries {
		zs := ix.RangeCount(q)
		rs := rt.SearchCount(q)
		zCand += zs.Candidates
		zRes += zs.Results
		rRes += rs.Results
	}
	if zRes != rRes {
		t.Fatalf("index families disagree on results: %d vs %d", zRes, rRes)
	}
	if zCand < zRes {
		t.Fatalf("candidates < results")
	}
	t.Logf("z-order inspected %d candidates for %d results (%.1fx overhead)",
		zCand, zRes, float64(zCand)/float64(zRes+1))
}
