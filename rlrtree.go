// Package rlrtree is an in-memory spatial index library built around the
// RLR-Tree (Gu et al., SIGMOD 2023): an R-Tree whose two insertion
// heuristics — ChooseSubtree and Split — are replaced by policies learned
// with reinforcement learning, while the tree structure and every query
// algorithm stay exactly those of the classic R-Tree.
//
// The package exposes three layers:
//
//   - A full classic R-Tree with pluggable strategies (New, Options): the
//     Guttman R-Tree, R*-Tree, and RR*-Tree baselines are all available
//     out of the box, along with range search, exact KNN, deletion, and
//     per-query node-access statistics.
//
//   - RLR-Tree training (TrainChoosePolicy, TrainSplitPolicy,
//     TrainCombined): learn a Policy from a sample of your data. Policies
//     serialize to JSON (Policy.Save, LoadPolicy) and transfer to datasets
//     far larger than the training sample.
//
//   - RLR-Tree usage (NewRLRTree): an ordinary *Tree whose insertions are
//     driven by the learned policy. Everything that works on an R-Tree —
//     Search, KNN, Delete — works on it unchanged, which is the paper's
//     core design property.
//
// Quick start:
//
//	data := ...                                  // []rlrtree.Rect
//	policy, _, err := rlrtree.TrainCombined(data[:100_000], rlrtree.TrainConfig{})
//	tree := rlrtree.NewRLRTree(policy)
//	for i, r := range data {
//		tree.Insert(r, i)
//	}
//	results, stats := tree.Search(rlrtree.NewRect(0.1, 0.1, 0.2, 0.2))
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package rlrtree

import (
	"io"

	"github.com/rlr-tree/rlrtree/internal/collection"
	"github.com/rlr-tree/rlrtree/internal/core"
	"github.com/rlr-tree/rlrtree/internal/geom"
	"github.com/rlr-tree/rlrtree/internal/pager"
	"github.com/rlr-tree/rlrtree/internal/rtree"
	"github.com/rlr-tree/rlrtree/internal/shard"
	"github.com/rlr-tree/rlrtree/internal/wal"
)

// Geometry types.
type (
	// Rect is an axis-aligned rectangle; points are rectangles with
	// Min == Max.
	Rect = geom.Rect
	// Point is a location in the plane.
	Point = geom.Point
)

// NewRect returns the rectangle spanning the two corners, normalizing
// their order.
func NewRect(x1, y1, x2, y2 float64) Rect { return geom.NewRect(x1, y1, x2, y2) }

// Pt returns the point (x, y).
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// PointRect returns the degenerate rectangle covering exactly p.
func PointRect(p Point) Rect { return geom.PointRect(p) }

// Square returns the axis-aligned square with the given center and side.
func Square(cx, cy, side float64) Rect { return geom.Square(cx, cy, side) }

// Tree types and strategy plug-ins.
type (
	// Tree is the R-Tree. It is not safe for concurrent mutation;
	// concurrent read-only queries are safe.
	Tree = rtree.Tree
	// Options configures a Tree (capacity bounds and strategies).
	Options = rtree.Options
	// QueryStats reports per-query node accesses (the paper's cost metric).
	QueryStats = rtree.QueryStats
	// Neighbor is one KNN result.
	Neighbor = rtree.Neighbor
	// Entry and Node expose the tree structure to custom strategies.
	Entry = rtree.Entry
	Node  = rtree.Node
	// NodeID identifies a node slot in a Tree's arena. IDs are stable
	// across Clone/CloneWithInto/SyncFrom, which makes them usable as
	// external cache keys (see internal/pager).
	NodeID = rtree.NodeID
	// SubtreeChooser and Splitter are the two strategy extension points.
	SubtreeChooser = rtree.SubtreeChooser
	Splitter       = rtree.Splitter
)

// NoNode is the zero NodeID: no node carries it, and leaf entries use it as
// their Child value.
const NoNode = rtree.NoNode

// Heuristic strategies (the paper's baselines).
type (
	// GuttmanChooser is the classic least-area-enlargement rule.
	GuttmanChooser = rtree.GuttmanChooser
	// RStarChooser is the R*-Tree ChooseSubtree rule.
	RStarChooser = rtree.RStarChooser
	// RRStarChooser is the revised R*-Tree ChooseSubtree rule.
	RRStarChooser = rtree.RRStarChooser
	// LinearSplit and QuadraticSplit are Guttman's node splits.
	LinearSplit    = rtree.LinearSplit
	QuadraticSplit = rtree.QuadraticSplit
	// GreeneSplit is Greene's split.
	GreeneSplit = rtree.GreeneSplit
	// RStarSplit is the R*-Tree split.
	RStarSplit = rtree.RStarSplit
	// MinOverlapSplit is the minimum-overlap partition (the paper's
	// reference splitter).
	MinOverlapSplit = rtree.MinOverlapSplit
	// RRStarSplit is the revised R*-Tree split.
	RRStarSplit = rtree.RRStarSplit
)

// New returns an empty R-Tree. The zero Options selects the paper's
// defaults: capacity 50, minimum fill 20, Guttman insertion, quadratic
// split. It panics on invalid options; NewChecked returns the error
// instead.
func New(opts Options) *Tree { return rtree.New(opts) }

// NewChecked is New returning an error instead of panicking.
func NewChecked(opts Options) (*Tree, error) { return rtree.NewChecked(opts) }

// Learned-policy types.
type (
	// Policy holds trained RLR-Tree Q-networks plus the featurization
	// parameters; nil networks fall back to the reference heuristics.
	Policy = core.Policy
	// TrainConfig collects the training hyperparameters; the zero value
	// reproduces the paper's setup.
	TrainConfig = core.Config
	// TrainReport summarizes a training run.
	TrainReport = core.TrainReport
)

// NewRLRTree returns an empty tree whose ChooseSubtree and Split decisions
// are made greedily by the trained policy. All query methods work on it
// unchanged.
func NewRLRTree(p *Policy) *Tree { return p.NewTree() }

// TrainChoosePolicy trains only the ChooseSubtree agent (the paper's "RL
// ChooseSubtree" index) on the given sample.
func TrainChoosePolicy(data []Rect, cfg TrainConfig) (*Policy, *TrainReport, error) {
	return core.TrainChoosePolicy(data, cfg)
}

// TrainSplitPolicy trains only the Split agent (the paper's "RL Split"
// index) on the given sample.
func TrainSplitPolicy(data []Rect, cfg TrainConfig) (*Policy, *TrainReport, error) {
	return core.TrainSplitPolicy(data, cfg)
}

// TrainCombined trains both agents with the paper's alternating schedule
// and returns the full RLR-Tree policy.
func TrainCombined(data []Rect, cfg TrainConfig) (*Policy, *TrainReport, error) {
	return core.TrainCombined(data, cfg)
}

// LoadPolicy reads a policy saved with Policy.Save.
func LoadPolicy(path string) (*Policy, error) { return core.LoadPolicy(path) }

// Policy-inference engine types. A trained policy's DQN can be distilled
// into cheaper exact-inference backends: a branch-table policy (a
// depth-bounded decision tree evaluated as a flat-array walk) and a
// quantized int16 fixed-point copy of the network. The bundle carries
// the reference MLP plus those artifacts; HotPolicy serves any of them
// behind an atomically swappable chooser/splitter pair.
type (
	// PolicyBundle is a Policy plus its optional distilled artifacts.
	// Save writes a v2 policy file when distilled; LoadBundle reads
	// files of any supported version.
	PolicyBundle = core.PolicyBundle
	// DistillConfig parameterizes Distill; the zero value uses the
	// distiller defaults.
	DistillConfig = core.DistillConfig
	// DistillReport carries per-operation agreement between the MLP and
	// each compiled backend on held-out states.
	DistillReport = core.DistillReport
	// HotPolicy publishes a policy bundle's inference engines behind an
	// atomic pointer so the serving insert path can switch backends (or
	// reload a new bundle) without a restart and without locking
	// decisions.
	HotPolicy = core.HotPolicy
)

// Distill compiles the policy's networks into branch-table and quantized
// backends and returns them as a bundle alongside an agreement report.
func Distill(p *Policy, cfg DistillConfig) (*PolicyBundle, *DistillReport, error) {
	return core.Distill(p, cfg)
}

// LoadBundle reads a policy file of any supported version as a bundle
// (v1 files load with no distilled artifacts).
func LoadBundle(path string) (*PolicyBundle, error) { return core.LoadBundle(path) }

// NewHotPolicy wraps a bundle for hot-swappable serving. Kind selects
// the initial backend: "auto", "mlp", "table" or "qmlp" (PolicyKinds).
func NewHotPolicy(b *PolicyBundle, kind string) (*HotPolicy, error) {
	return core.NewHotPolicy(b, kind)
}

// PolicyKinds lists the recognized inference-backend selectors.
func PolicyKinds() []string { return append([]string(nil), core.PolicyKinds...) }

// ConcurrentTree makes a Tree safe for concurrent use with a lock-free
// read path: queries load the currently published epoch (an immutable
// snapshot) through an atomic pointer and take no lock at all, while
// mutations serialize through a writer mutex and publish a new epoch
// left-right style; InsertBatch publishes one epoch for a whole batch.
// Readers never block writers and writers never block readers. It is
// the index type the HTTP serving layer (internal/server, cmd/rlr-serve)
// puts on the network.
type ConcurrentTree = rtree.ConcurrentTree

// NewConcurrentTree wraps t for concurrent use. The caller must stop
// using t directly.
func NewConcurrentTree(t *Tree) *ConcurrentTree { return rtree.NewConcurrent(t) }

// TreeStats summarizes a tree's structure (size, height, node counts,
// fill, memory footprint); see (*Tree).Stats.
type TreeStats = rtree.TreeStats

// ShardedTree partitions objects across N independent ConcurrentTrees
// by a Z-order spatial router, giving writers per-shard locks while
// queries fan out and merge exactly. It answers the same Search / KNN /
// Delete calls as a single tree with identical results.
type ShardedTree = shard.ShardedTree

// ShardOptions configures NewShardedTree: shard count, router grid
// resolution, world rectangle, and the per-shard tree Options.
type ShardOptions = shard.Options

// NewShardedTree returns an empty sharded tree. The zero ShardOptions
// selects one shard over the unit square with default tree options.
func NewShardedTree(opts ShardOptions) (*ShardedTree, error) { return shard.New(opts) }

// Item is one object for bulk loading: a bounding rectangle plus payload.
type Item = rtree.Item

// BulkLoadSTR builds a tree bottom-up with Sort-Tile-Recursive packing —
// the static-loading alternative to one-by-one insertion. The result is an
// ordinary *Tree that supports queries and further dynamic updates using
// opts' strategies.
func BulkLoadSTR(opts Options, items []Item) (*Tree, error) {
	return rtree.BulkLoadSTR(opts, items)
}

// DecodeTree reads a tree previously written with (*Tree).Encode. The
// options supply the strategies for future insertions; payload types must
// be gob-registered by the caller.
func DecodeTree(r io.Reader, opts Options) (*Tree, error) {
	return rtree.Decode(r, opts)
}

// NearestIter yields stored objects in nondecreasing distance order —
// incremental KNN for when k is unknown in advance. See
// (*Tree).NewNearestIter.
type NearestIter = rtree.NearestIter

// JoinPair is one result of a spatial join.
type JoinPair = rtree.JoinPair

// JoinIntersects reports every intersecting object pair between two trees
// using the synchronized R-Tree join; see rtree.JoinIntersects.
func JoinIntersects(a, b *Tree, fn func(JoinPair)) (statsA, statsB QueryStats) {
	return rtree.JoinIntersects(a, b, fn)
}

// SVGOptions configures (*Tree).WriteSVG, which renders the bounding-box
// hierarchy for visual inspection.
type SVGOptions = rtree.SVGOptions

// BufferPool simulates a disk-resident deployment: an LRU page cache over
// tree nodes. Replay query workloads against it with ReplayRange to
// measure page faults instead of logical node accesses.
type BufferPool = pager.BufferPool

// NewBufferPool returns an LRU pool holding at most capacity node pages.
func NewBufferPool(capacity int) *BufferPool { return pager.NewBufferPool(capacity) }

// IOStats reports the cost of replayed queries under a BufferPool.
type IOStats = pager.IOStats

// ReplayRange replays a range-query workload through a buffer pool and
// returns logical accesses, page faults and result counts.
func ReplayRange(t *Tree, pool *BufferPool, queries []Rect) IOStats {
	return pager.ReplayRange(t, pool, queries)
}

// WarmPool pins the tree's top levels into the pool and resets its
// counters, the standard posture where upper index levels stay in memory.
func WarmPool(t *Tree, pool *BufferPool) { pager.Warm(t, pool) }

// Durability: the write-ahead log of internal/wal, re-exported for
// embedders who want crash recovery around their own mutation loop. The
// serving layer (cmd/rlr-serve -wal-dir) uses the same machinery.
type (
	// WAL is a segmented, CRC-checksummed write-ahead log of spatial
	// mutations. Append each Insert/Delete before applying it; after a
	// crash, Replay past your newest snapshot's LSN reproduces the
	// acknowledged state (minus writes the fsync policy had not yet made
	// durable). Safe for concurrent appenders.
	WAL = wal.WAL
	// WALOptions configures OpenWAL: directory, segment rotation size,
	// fsync policy, routing epoch.
	WALOptions = wal.Options
	// WALRecord is one logged mutation, as yielded by Replay.
	WALRecord = wal.Record
	// WALSyncPolicy selects when appends fsync: WALSyncAlways,
	// WALSyncInterval (group commit), or WALSyncNone.
	WALSyncPolicy = wal.SyncPolicy
	// WALReplayStats summarizes a Replay pass.
	WALReplayStats = wal.ReplayStats
	// WALMetrics is the log's counter snapshot (appends, fsyncs,
	// rotations, torn-tail truncations, ...).
	WALMetrics = wal.Metrics
)

// Fsync policies for WALOptions.Sync.
const (
	WALSyncAlways   = wal.SyncAlways
	WALSyncInterval = wal.SyncInterval
	WALSyncNone     = wal.SyncNone
)

// OpenWAL opens (or creates) a write-ahead log in opts.Dir, truncating
// any torn tail left by a crash. Close it when done.
func OpenWAL(opts WALOptions) (*WAL, error) { return wal.Open(opts) }

// ParseWALSyncPolicy parses "always", "interval" or "none".
func ParseWALSyncPolicy(s string) (WALSyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// ResumeCombined continues alternating training of a previously trained
// combined policy on new data — continual adaptation without retraining
// from scratch. The input policy is not modified.
func ResumeCombined(prev *Policy, data []Rect, cfg TrainConfig) (*Policy, *TrainReport, error) {
	return core.ResumeCombined(prev, data, cfg)
}

// Keyed object collection: the live-update layer of internal/collection,
// re-exported for embedders. Every object has a string key; Set replaces
// the key's previous position (delete-old + reinsert in the spatial
// index), Get and Del address objects by key, and the query methods page
// through stable cursors. This is the layer that makes moving-object
// workloads expressible — "object X moved" instead of delete-rect +
// insert-rect — and it is what the serving layer's /set, /get, /del,
// /within and paged /search, /knn endpoints speak.
type (
	// Collection is the keyed layer over a Spatial index. All methods are
	// safe for concurrent use; Set/Del serialize per key.
	Collection = collection.Collection
	// Spatial is the index contract the collection needs; both
	// *ConcurrentTree and *ShardedTree satisfy it.
	Spatial = collection.Spatial
	// SetResult reports whether a Set replaced an existing position and,
	// if so, what that position was.
	SetResult = collection.SetResult
	// Page is one page of a keyed query: parallel Keys/Rects (plus Dists
	// for Nearby) and a resume Cursor, non-empty while results remain.
	Page = collection.Page
	// KeyRect is one (key, position) pair, the unit of the keyed snapshot
	// section.
	KeyRect = collection.KeyRect
	// CollectionStats is the collection's counter snapshot (objects,
	// sets, updates in place, dels).
	CollectionStats = collection.Stats
)

// NewCollection returns an empty keyed collection over ix. Typical
// wiring: NewCollection(NewConcurrentTree(New(Options{}))) for one tree,
// or a ShardedTree for per-shard write locks under churn.
func NewCollection(ix Spatial) *Collection { return collection.New(ix) }

// RestoreCollection rebuilds a collection whose key map comes from a
// snapshot's keyed section while ix was restored from the same snapshot's
// index payload; see collection.Restore for the pairing contract.
func RestoreCollection(ix Spatial, pairs []KeyRect) *Collection {
	return collection.Restore(ix, pairs)
}
