// POI search: index a heavily clustered point-of-interest dataset (the
// kind of distribution an OpenStreetMap extract has — dense cities, road
// corridors, sparse countryside) and serve nearest-neighbor lookups, the
// workload of a "restaurants near me" feature.
//
// The RLR-Tree is trained only on range queries, yet — as the paper's
// Figure 7 shows — the learned structure also accelerates KNN, because
// both query types benefit from tight, low-overlap nodes.
//
// Run with:
//
//	go run ./examples/poi-search
package main

import (
	"fmt"
	"math"
	"math/rand"

	rlrtree "github.com/rlr-tree/rlrtree"
)

// generatePOIs produces clustered points: a few weighted "city" centers,
// each with a Gaussian cloud, plus uniform background noise.
func generatePOIs(n int, seed int64) []rlrtree.Point {
	rng := rand.New(rand.NewSource(seed))
	type city struct{ x, y, sigma, w float64 }
	cities := make([]city, 60)
	total := 0.0
	for i := range cities {
		cities[i] = city{
			x: rng.Float64(), y: rng.Float64(),
			sigma: 0.004 + 0.02*rng.Float64(),
			w:     1 / math.Pow(float64(i+1), 0.8),
		}
		total += cities[i].w
	}
	pts := make([]rlrtree.Point, 0, n)
	for len(pts) < n {
		if rng.Float64() < 0.06 { // countryside noise
			pts = append(pts, rlrtree.Pt(rng.Float64(), rng.Float64()))
			continue
		}
		u := rng.Float64() * total
		var c city
		for _, cand := range cities {
			if u -= cand.w; u <= 0 {
				c = cand
				break
			}
		}
		x := c.x + rng.NormFloat64()*c.sigma
		y := c.y + rng.NormFloat64()*c.sigma
		if x < 0 || x > 1 || y < 0 || y > 1 {
			continue
		}
		pts = append(pts, rlrtree.Pt(x, y))
	}
	return pts
}

func main() {
	pois := generatePOIs(50_000, 7)
	names := []string{"cafe", "fuel", "atm", "pharmacy", "library"}

	// Train on the first 5 000 insertions — the stream's own prefix.
	sample := make([]rlrtree.Rect, 5_000)
	for i := range sample {
		sample[i] = rlrtree.PointRect(pois[i])
	}
	fmt.Println("training policy on the first 5 000 POIs...")
	policy, _, err := rlrtree.TrainCombined(sample, rlrtree.TrainConfig{
		ChooseEpochs: 6, SplitEpochs: 2, Parts: 5, Seed: 7,
	})
	if err != nil {
		panic(err)
	}

	// Index all POIs with the learned policy, and with R* for comparison.
	rlr := rlrtree.NewRLRTree(policy)
	rstar := rlrtree.New(rlrtree.Options{
		Chooser: rlrtree.RStarChooser{}, Splitter: rlrtree.RStarSplit{},
		ForcedReinsert: true,
	})
	for i, p := range pois {
		tag := fmt.Sprintf("%s-%d", names[i%len(names)], i)
		rlr.Insert(rlrtree.PointRect(p), tag)
		rstar.Insert(rlrtree.PointRect(p), tag)
	}
	fmt.Printf("indexed %d POIs (height %d, %d nodes)\n\n", rlr.Len(), rlr.Height(), rlr.NodeCount())

	// "Near me" lookups from a few user locations.
	users := []rlrtree.Point{rlrtree.Pt(0.31, 0.58), rlrtree.Pt(0.72, 0.14), rlrtree.Pt(0.5, 0.5)}
	var accRLR, accRStar int
	for _, u := range users {
		nn, stats := rlr.KNN(u, 3)
		_, statsR := rstar.KNN(u, 3)
		accRLR += stats.NodesAccessed
		accRStar += statsR.NodesAccessed
		fmt.Printf("user at %v:\n", u)
		for _, n := range nn {
			fmt.Printf("  %-12v dist %.4f\n", n.Data, math.Sqrt(n.DistSq))
		}
	}
	fmt.Printf("\nnode accesses for the %d lookups: RLR-Tree %d, R*-Tree %d\n",
		len(users), accRLR, accRStar)

	// A bounding-box search ("all fuel stations on this map tile") uses
	// the same tree.
	tile := rlrtree.NewRect(0.25, 0.5, 0.375, 0.625)
	count := 0
	rlr.SearchEach(tile, func(_ rlrtree.Rect, data any) {
		if s, ok := data.(string); ok && len(s) >= 4 && s[:4] == "fuel" {
			count++
		}
	})
	fmt.Printf("fuel stations on tile %v: %d\n", tile, count)
}
