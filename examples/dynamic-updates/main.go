// Dynamic updates: run a fleet-tracking style churn workload — vehicles
// appear, move (delete + reinsert), and disappear — against an RLR-Tree
// whose policy was trained once, up front.
//
// This exercises the paper's claim that, unlike CDF-based learned indexes,
// the RLR-Tree "readily handles updates without the need to keep
// retraining the models": the policy guides every insertion, deletions use
// the classic condense-tree algorithm, and query performance holds steady
// as the working set turns over completely.
//
// Run with:
//
//	go run ./examples/dynamic-updates
package main

import (
	"fmt"
	"math/rand"

	rlrtree "github.com/rlr-tree/rlrtree"
)

type vehicle struct {
	id  int
	box rlrtree.Rect
}

func main() {
	rng := rand.New(rand.NewSource(23))
	pos := func() rlrtree.Rect {
		// Vehicles concentrate on a few arterial corridors.
		lane := rng.Intn(4)
		along := rng.Float64()
		off := rng.NormFloat64() * 0.01
		var x, y float64
		if lane%2 == 0 {
			x, y = along, 0.2+0.2*float64(lane/2)+off
		} else {
			x, y = 0.25+0.5*float64(lane/2)+off, along
		}
		return rlrtree.Square(clamp(x), clamp(y), 0.0008)
	}

	// Train once on a snapshot of the initial traffic.
	sample := make([]rlrtree.Rect, 4_000)
	for i := range sample {
		sample[i] = pos()
	}
	fmt.Println("training policy once, before the stream starts...")
	policy, _, err := rlrtree.TrainCombined(sample, rlrtree.TrainConfig{
		ChooseEpochs: 6, SplitEpochs: 2, Parts: 5, Seed: 23,
	})
	if err != nil {
		panic(err)
	}
	tree := rlrtree.NewRLRTree(policy)

	// Initial fleet.
	fleet := map[int]vehicle{}
	nextID := 0
	for i := 0; i < 20_000; i++ {
		v := vehicle{id: nextID, box: pos()}
		tree.Insert(v.box, v.id)
		fleet[v.id] = v
		nextID++
	}

	query := rlrtree.NewRect(0.4, 0.15, 0.6, 0.25) // a monitored corridor
	fmt.Printf("initial fleet %d; corridor query: ", tree.Len())
	printQuery(tree, query)

	// Churn: 100 000 events of moves, arrivals and departures.
	ids := make([]int, 0, len(fleet))
	for id := range fleet {
		ids = append(ids, id)
	}
	for step := 0; step < 100_000; step++ {
		switch r := rng.Float64(); {
		case r < 0.6 && len(ids) > 0: // move
			i := rng.Intn(len(ids))
			v := fleet[ids[i]]
			if !tree.Delete(v.box, v.id) {
				panic("lost a vehicle")
			}
			v.box = pos()
			tree.Insert(v.box, v.id)
			fleet[v.id] = v
		case r < 0.8: // arrival
			v := vehicle{id: nextID, box: pos()}
			tree.Insert(v.box, v.id)
			fleet[v.id] = v
			ids = append(ids, v.id)
			nextID++
		case len(ids) > 0: // departure
			i := rng.Intn(len(ids))
			v := fleet[ids[i]]
			if !tree.Delete(v.box, v.id) {
				panic("lost a vehicle")
			}
			delete(fleet, v.id)
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
		}
		if (step+1)%25_000 == 0 {
			fmt.Printf("after %6d events (%d vehicles): ", step+1, tree.Len())
			printQuery(tree, query)
		}
	}

	if err := tree.Validate(); err != nil {
		panic(fmt.Sprintf("tree corrupted by churn: %v", err))
	}
	if tree.Len() != len(fleet) {
		panic("tree size diverged from fleet size")
	}
	fmt.Printf("\nfinal state valid: %d vehicles, height %d, %d nodes — no retraining needed\n",
		tree.Len(), tree.Height(), tree.NodeCount())
}

func printQuery(tree *rlrtree.Tree, q rlrtree.Rect) {
	n, stats := tree.Search(q)
	fmt.Printf("%4d vehicles, %3d node accesses\n", len(n), stats.NodesAccessed)
}

func clamp(v float64) float64 {
	if v < 0.001 {
		return 0.001
	}
	if v > 0.999 {
		return 0.999
	}
	return v
}
