// Quickstart: train an RLR-Tree policy on a small sample, index a larger
// dataset with it, and compare query costs against the classic R-Tree.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	rlrtree "github.com/rlr-tree/rlrtree"
)

func main() {
	// 1. Some spatial data: 30 000 small squares, Gaussian-clustered
	// around the center of the unit square (think venue locations in a
	// city region).
	rng := rand.New(rand.NewSource(1))
	data := make([]rlrtree.Rect, 30_000)
	for i := range data {
		x := clamp(0.5+rng.NormFloat64()*0.2, 0.001, 0.999)
		y := clamp(0.5+rng.NormFloat64()*0.2, 0.001, 0.999)
		data[i] = rlrtree.Square(x, y, 0.0005)
	}

	// 2. Train the two RL agents on a small sample. The policy transfers
	// to much larger datasets, so training size stays modest.
	fmt.Println("training RLR-Tree policy on 5 000 samples...")
	cfg := rlrtree.TrainConfig{
		ChooseEpochs: 6, SplitEpochs: 2, Parts: 5,
		Seed: 1,
	}
	policy, report, err := rlrtree.TrainCombined(data[:5_000], cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("trained in %s (%d + %d network updates)\n\n",
		report.Duration.Round(1e7), report.ChooseUpdates, report.SplitUpdates)

	// 3. Build the RLR-Tree and a classic R-Tree over the full dataset.
	rlr := rlrtree.NewRLRTree(policy)
	classic := rlrtree.New(rlrtree.Options{}) // Guttman R-Tree defaults
	for i, r := range data {
		rlr.Insert(r, i)
		classic.Insert(r, i)
	}

	// 4. Range query: both trees return identical results; the RLR-Tree
	// should touch fewer nodes.
	query := rlrtree.NewRect(0.48, 0.48, 0.52, 0.52)
	resA, statsA := rlr.Search(query)
	resB, statsB := classic.Search(query)
	fmt.Printf("range %v\n", query)
	fmt.Printf("  RLR-Tree: %4d results, %3d node accesses\n", len(resA), statsA.NodesAccessed)
	fmt.Printf("  R-Tree:   %4d results, %3d node accesses\n", len(resB), statsB.NodesAccessed)

	// 5. KNN works unchanged on both — the RLR-Tree changes only how the
	// tree is built, never how it is queried.
	center := rlrtree.Pt(0.5, 0.5)
	nn, statsK := rlr.KNN(center, 5)
	fmt.Printf("\n5 nearest objects to %v (%d node accesses):\n", center, statsK.NodesAccessed)
	for _, n := range nn {
		fmt.Printf("  object %v at distance² %.2e\n", n.Data, n.DistSq)
	}

	// 6. Policies are plain JSON files: save once, reuse everywhere.
	if err := policy.Save("policy.json"); err != nil {
		panic(err)
	}
	fmt.Println("\npolicy saved to policy.json")
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
