// Rectangle objects: index building footprints (true extended rectangles,
// not points) and run window queries — the workload of a map-rendering or
// spatial-join backend.
//
// Learned spatial indexes that map data through a space-filling curve only
// handle points; the RLR-Tree inherits the R-Tree's ability to index
// arbitrary rectangles, which this example exercises end to end, including
// a policy trained on one city district and applied to the whole city.
//
// Run with:
//
//	go run ./examples/rect-objects
package main

import (
	"fmt"
	"math/rand"

	rlrtree "github.com/rlr-tree/rlrtree"
)

// Building is a typical payload struct.
type Building struct {
	ID     int
	Levels int
}

// generateBlocks lays out buildings in a grid of city blocks: each block
// holds a cluster of axis-aligned footprints of varying size.
func generateBlocks(nBlocks, perBlock int, seed int64) []rlrtree.Rect {
	rng := rand.New(rand.NewSource(seed))
	var out []rlrtree.Rect
	for b := 0; b < nBlocks; b++ {
		bx := rng.Float64() * 0.95
		by := rng.Float64() * 0.95
		for i := 0; i < perBlock; i++ {
			w := 0.0005 + rng.Float64()*0.004
			h := 0.0005 + rng.Float64()*0.004
			x := bx + rng.Float64()*0.04
			y := by + rng.Float64()*0.04
			out = append(out, rlrtree.NewRect(x, y, x+w, y+h))
		}
	}
	return out
}

func main() {
	buildings := generateBlocks(400, 60, 11) // 24 000 footprints

	fmt.Println("training on one district (4 000 footprints)...")
	policy, _, err := rlrtree.TrainCombined(buildings[:4_000], rlrtree.TrainConfig{
		ChooseEpochs: 6, SplitEpochs: 2, Parts: 5, Seed: 11,
	})
	if err != nil {
		panic(err)
	}

	city := rlrtree.NewRLRTree(policy)
	classic := rlrtree.New(rlrtree.Options{})
	for i, r := range buildings {
		b := Building{ID: i, Levels: 1 + i%30}
		city.Insert(r, b)
		classic.Insert(r, b)
	}
	fmt.Printf("indexed %d footprints\n\n", city.Len())

	// Window query: everything visible in a viewport.
	viewport := rlrtree.NewRect(0.40, 0.40, 0.55, 0.55)
	visible, stats := city.Search(viewport)
	_, statsClassic := classic.Search(viewport)
	fmt.Printf("viewport %v: %d buildings (RLR %d vs R-Tree %d node accesses)\n",
		viewport, len(visible), stats.NodesAccessed, statsClassic.NodesAccessed)

	// Aggregate over a window without materializing results: total floor
	// count inside a planning zone.
	zone := rlrtree.NewRect(0.1, 0.1, 0.3, 0.3)
	floors := 0
	city.SearchEach(zone, func(_ rlrtree.Rect, data any) {
		floors += data.(Building).Levels
	})
	fmt.Printf("zone %v: %d total floors\n", zone, floors)

	// Point-in-rectangle: which buildings cover a clicked location?
	click := rlrtree.Pt(0.42, 0.47)
	hit, _ := city.ContainsPoint(click)
	fmt.Printf("click at %v hits a building: %v\n", click, hit)

	// Rectangles delete like anything else: demolish a block.
	demolished := 0
	var doomed []int
	city.SearchEach(rlrtree.NewRect(0.7, 0.7, 0.74, 0.74), func(r rlrtree.Rect, data any) {
		doomed = append(doomed, data.(Building).ID)
	})
	for _, id := range doomed {
		if city.Delete(buildings[id], Building{ID: id, Levels: 1 + id%30}) {
			demolished++
		}
	}
	fmt.Printf("demolished %d buildings; %d remain (tree still valid: %v)\n",
		demolished, city.Len(), city.Validate() == nil)
}
