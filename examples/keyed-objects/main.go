// Keyed objects: the live-update layer. Objects are addressed by string
// key — Set("bus-17", pos) moves the object, Get/Del find and remove it
// by key — instead of by (rect, id) pairs the caller must remember. The
// collection keeps a B+-tree key map and a spatial index consistent: a
// Set on an existing key is delete-old + reinsert under per-key locks,
// so "the object moved" is one call, not two that can half-apply.
//
// Queries page through stable cursors: each page is ordered by key, the
// cursor names the last key delivered, and a resume sees every object
// that existed throughout the query exactly once even while the
// collection churns between pages.
//
// Run with:
//
//	go run ./examples/keyed-objects
package main

import (
	"fmt"
	"math/rand"

	rlrtree "github.com/rlr-tree/rlrtree"
)

func main() {
	// A sharded index underneath gives writers per-shard locks — the
	// right shape for update churn. A single NewConcurrentTree works too.
	ix, err := rlrtree.NewShardedTree(rlrtree.ShardOptions{Shards: 4})
	if err != nil {
		panic(err)
	}
	coll := rlrtree.NewCollection(ix)

	// A small fleet of buses on the unit square.
	rng := rand.New(rand.NewSource(7))
	pos := make(map[string]rlrtree.Point, 500)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("bus-%03d", i)
		p := rlrtree.Pt(rng.Float64(), rng.Float64())
		pos[key] = p
		coll.Set(key, rlrtree.PointRect(p))
	}
	fmt.Printf("placed %d buses\n", coll.Len())

	// Churn: every bus moves 100 times. One Set per move — the collection
	// finds the old position via the key map and replaces it atomically.
	for step := 0; step < 100; step++ {
		for key, p := range pos {
			p.X += (rng.Float64() - 0.5) * 0.02
			p.Y += (rng.Float64() - 0.5) * 0.02
			pos[key] = p
			res := coll.Set(key, rlrtree.PointRect(p))
			if !res.Replaced {
				panic("a moving bus must replace its previous position")
			}
		}
	}
	stats := coll.Stats()
	fmt.Printf("after churn: %d buses, %d sets (%d updates in place)\n",
		stats.Objects, stats.Sets, stats.UpdatesInPlace)

	// Point lookup by key.
	if r, ok := coll.Get("bus-042"); ok {
		fmt.Printf("bus-042 is at (%.3f, %.3f)\n", r.MinX, r.MinY)
	}

	// Page through a monitored region, 10 buses per page. The cursor is
	// an opaque resume token; an empty cursor means the query is done.
	region := rlrtree.NewRect(0.25, 0.25, 0.75, 0.75)
	var cursor string
	total, pages := 0, 0
	for {
		page, _, err := coll.Within(region, cursor, 10)
		if err != nil {
			panic(err)
		}
		total += len(page.Keys)
		pages++
		if page.Cursor == "" {
			break
		}
		cursor = page.Cursor
	}
	fmt.Printf("central region: %d buses over %d pages of ≤10\n", total, pages)

	// Nearest buses to the depot, with squared distances.
	page, _, err := coll.Nearby(rlrtree.Pt(0.5, 0.5), 3, "", 0)
	if err != nil {
		panic(err)
	}
	for i, key := range page.Keys {
		fmt.Printf("  #%d nearest to depot: %s (dist² %.5f)\n", i+1, key, page.Dists[i])
	}

	// Retire a bus by key; no rect needed.
	if _, ok := coll.Del("bus-042"); !ok {
		panic("bus-042 should exist")
	}
	fmt.Printf("retired bus-042; %d buses remain\n", coll.Len())

	// The key map and the spatial index must agree exactly, both ways.
	if err := coll.Validate(); err != nil {
		panic(fmt.Sprintf("collection corrupted by churn: %v", err))
	}
	fmt.Println("key map ↔ spatial index consistency verified")
}
