package rlrtree_test

// One benchmark per table and figure of the paper's evaluation
// (Section 5), each regenerating the corresponding rows/series at the
// "small" scale via the experiment harness, plus micro-benchmarks for the
// core index operations. Run with:
//
//	go test -bench=. -benchmem
//
// The first iteration of each experiment benchmark logs the regenerated
// table (visible with -v). Trained policies are cached process-wide, so a
// full -bench=. run trains each configuration once.

import (
	"fmt"
	"math/rand"
	"testing"

	rlrtree "github.com/rlr-tree/rlrtree"
	"github.com/rlr-tree/rlrtree/internal/dataset"
	"github.com/rlr-tree/rlrtree/internal/experiment"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	sc := experiment.Small
	for i := 0; i < b.N; i++ {
		tables, err := experiment.Run(id, sc, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, t := range tables {
				b.Log("\n" + t.String())
			}
		}
	}
}

// BenchmarkTable1 regenerates Table 1: the cost-function action-space
// ablation vs the final top-k design.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable3 regenerates Table 3: RL ChooseSubtree vs RL Split vs
// the combined RLR-Tree on all five datasets.
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable4 regenerates Table 4: RLR-Tree index size vs dataset size.
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkFig4a regenerates Figure 4a: RL ChooseSubtree RNA vs query size.
func BenchmarkFig4a(b *testing.B) { benchExperiment(b, "fig4a") }

// BenchmarkFig4b regenerates Figure 4b: RL ChooseSubtree RNA vs dataset size.
func BenchmarkFig4b(b *testing.B) { benchExperiment(b, "fig4b") }

// BenchmarkFig5a regenerates Figure 5a: RL Split RNA vs query size.
func BenchmarkFig5a(b *testing.B) { benchExperiment(b, "fig5a") }

// BenchmarkFig5b regenerates Figure 5b: RL Split RNA vs dataset size.
func BenchmarkFig5b(b *testing.B) { benchExperiment(b, "fig5b") }

// BenchmarkFig6 regenerates Figure 6: range-query RNA vs the R-Tree,
// R*-Tree and RR*-Tree across query sizes and datasets.
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7 regenerates Figure 7: KNN-query RNA for K in {1..625}.
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8a regenerates Figure 8a: the effect of action-space size k.
func BenchmarkFig8a(b *testing.B) { benchExperiment(b, "fig8a") }

// BenchmarkFig8bc regenerates Figures 8b/8c: training time and RNA vs
// training-set size.
func BenchmarkFig8bc(b *testing.B) { benchExperiment(b, "fig8bc") }

// BenchmarkFig8d regenerates Figure 8d: the effect of the training query
// size.
func BenchmarkFig8d(b *testing.B) { benchExperiment(b, "fig8d") }

// BenchmarkFig9 regenerates Figure 9: index construction time.
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Figure 10: cross-distribution transfer.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// --- Micro-benchmarks -----------------------------------------------------

func benchInsert(b *testing.B, opts rlrtree.Options) {
	b.Helper()
	data := dataset.MustGenerate(dataset.GAU, 100_000, 1)
	b.ResetTimer()
	tree := rlrtree.New(opts)
	for i := 0; i < b.N; i++ {
		tree.Insert(data[i%len(data)], i)
	}
}

// BenchmarkInsertRTree measures Guttman R-Tree insertion throughput.
func BenchmarkInsertRTree(b *testing.B) {
	benchInsert(b, rlrtree.Options{Chooser: rlrtree.GuttmanChooser{}, Splitter: rlrtree.QuadraticSplit{}})
}

// BenchmarkInsertRStar measures R*-Tree insertion throughput (forced
// reinsertion enabled).
func BenchmarkInsertRStar(b *testing.B) {
	benchInsert(b, rlrtree.Options{Chooser: rlrtree.RStarChooser{}, Splitter: rlrtree.RStarSplit{}, ForcedReinsert: true})
}

// BenchmarkInsertRRStar measures RR*-Tree insertion throughput.
func BenchmarkInsertRRStar(b *testing.B) {
	benchInsert(b, rlrtree.Options{Chooser: rlrtree.RRStarChooser{}, Splitter: rlrtree.RRStarSplit{}})
}

// BenchmarkInsertRLR measures RLR-Tree insertion throughput, i.e. the
// per-insert overhead of state featurization plus Q-network inference
// (Section 4.1.3's complexity discussion).
func BenchmarkInsertRLR(b *testing.B) {
	train := dataset.MustGenerate(dataset.GAU, 2_000, 1)
	pol, _, err := rlrtree.TrainCombined(train, rlrtree.TrainConfig{
		ChooseEpochs: 1, SplitEpochs: 1, Parts: 3, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	data := dataset.MustGenerate(dataset.GAU, 100_000, 1)
	b.ResetTimer()
	tree := rlrtree.NewRLRTree(pol)
	for i := 0; i < b.N; i++ {
		tree.Insert(data[i%len(data)], i)
	}
}

// BenchmarkRangeQuery measures range-search throughput on a 100 K GAU
// R-Tree at the paper's default query size (0.01%).
func BenchmarkRangeQuery(b *testing.B) {
	data := dataset.MustGenerate(dataset.GAU, 100_000, 1)
	tree := rlrtree.New(rlrtree.Options{})
	for i, r := range data {
		tree.Insert(r, i)
	}
	queries := dataset.RangeQueries(1024, 0.0001, rlrtree.NewRect(0, 0, 1, 1), 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.SearchCount(queries[i%len(queries)])
	}
}

// BenchmarkKNNQuery measures exact 25-NN throughput on a 100 K GAU R-Tree.
func BenchmarkKNNQuery(b *testing.B) {
	data := dataset.MustGenerate(dataset.GAU, 100_000, 1)
	tree := rlrtree.New(rlrtree.Options{})
	for i, r := range data {
		tree.Insert(r, i)
	}
	points := dataset.KNNQueryPoints(1024, rlrtree.NewRect(0, 0, 1, 1), 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.KNN(points[i%len(points)], 25)
	}
}

// BenchmarkDelete measures deletion (with condense-tree) throughput.
func BenchmarkDelete(b *testing.B) {
	data := dataset.MustGenerate(dataset.UNI, 200_000, 1)
	tree := rlrtree.New(rlrtree.Options{})
	for i, r := range data {
		tree.Insert(r, i)
	}
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := rng.Intn(len(data))
		if tree.Delete(data[idx], idx) {
			b.StopTimer()
			tree.Insert(data[idx], idx) // keep the tree size stable
			b.StartTimer()
		}
	}
}

// BenchmarkAblations regenerates the rejected-design comparison of
// DESIGN.md §6 (cost-function actions, padded state, raw reward,
// area-ordered split shortlist) against the final design.
func BenchmarkAblations(b *testing.B) { benchExperiment(b, "ablations") }

// BenchmarkBulkLoadSTR measures Sort-Tile-Recursive packing throughput.
func BenchmarkBulkLoadSTR(b *testing.B) {
	data := dataset.MustGenerate(dataset.GAU, 100_000, 1)
	items := make([]rlrtree.Item, len(data))
	for i, r := range data {
		items[i] = rlrtree.Item{Rect: r, Data: i}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rlrtree.BulkLoadSTR(rlrtree.Options{}, items); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKNNBestFirst measures the Hjaltason–Samet best-first KNN
// against BenchmarkKNNQuery's branch-and-bound DFS.
func BenchmarkKNNBestFirst(b *testing.B) {
	data := dataset.MustGenerate(dataset.GAU, 100_000, 1)
	tree := rlrtree.New(rlrtree.Options{})
	for i, r := range data {
		tree.Insert(r, i)
	}
	points := dataset.KNNQueryPoints(1024, rlrtree.NewRect(0, 0, 1, 1), 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.KNNBestFirst(points[i%len(points)], 25)
	}
}

// BenchmarkTrainStep measures one DQN network update (batch 64) — the
// dominant cost of RLR-Tree training.
func BenchmarkTrainStep(b *testing.B) {
	train := dataset.MustGenerate(dataset.GAU, 1_000, 1)
	// One tiny run warms a policy; then time pure updates via TrainChoose
	// on a single epoch per iteration is too coarse — instead time the
	// public training entry point on a small fixed workload.
	cfg := rlrtree.TrainConfig{ChooseEpochs: 1, SplitEpochs: 1, Parts: 2, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rlrtree.TrainChoosePolicy(train, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIO regenerates the disk-deployment extension: relative page
// faults under LRU buffer pools of varying size.
func BenchmarkIO(b *testing.B) { benchExperiment(b, "io") }

// --- Query-kernel benchmarks (allocation profile) -------------------------
//
// These size-swept benchmarks pin the allocation behaviour of the iterative,
// scratch-pooled query kernels: SearchCount, SearchEach and the Append
// variants must report 0 allocs/op in steady state; Search and KNN allocate
// exactly their returned result slice. Results are recorded in
// BENCH_queries.json and EXPERIMENTS.md.

var queryBenchTrees = map[int]*rlrtree.Tree{}

// queryBenchTree builds (once per size, cached across benchmarks) a GAU
// tree at the paper's node capacities.
func queryBenchTree(b *testing.B, n int) *rlrtree.Tree {
	b.Helper()
	if t, ok := queryBenchTrees[n]; ok {
		return t
	}
	data := dataset.MustGenerate(dataset.GAU, n, 1)
	t := rlrtree.New(rlrtree.Options{})
	for i, r := range data {
		t.Insert(r, i)
	}
	queryBenchTrees[n] = t
	return t
}

var queryBenchSizes = []int{10_000, 100_000, 400_000}

func benchSizes(b *testing.B, fn func(b *testing.B, tree *rlrtree.Tree)) {
	b.Helper()
	for _, n := range queryBenchSizes {
		tree := queryBenchTree(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			fn(b, tree)
		})
	}
}

// BenchmarkSearchCount is the training-reward hot path: counting window
// queries at the paper's default 0.01% query size. Pooled path: 0 allocs/op.
func BenchmarkSearchCount(b *testing.B) {
	queries := dataset.RangeQueries(1024, 0.0001, rlrtree.NewRect(0, 0, 1, 1), 2)
	benchSizes(b, func(b *testing.B, tree *rlrtree.Tree) {
		for i := 0; i < b.N; i++ {
			tree.SearchCount(queries[i%len(queries)])
		}
	})
}

// BenchmarkSearchWindow measures materializing range search (allocates the
// returned payload slice only).
func BenchmarkSearchWindow(b *testing.B) {
	queries := dataset.RangeQueries(1024, 0.0001, rlrtree.NewRect(0, 0, 1, 1), 2)
	benchSizes(b, func(b *testing.B, tree *rlrtree.Tree) {
		for i := 0; i < b.N; i++ {
			tree.Search(queries[i%len(queries)])
		}
	})
}

// BenchmarkSearchAppend reuses the caller's result buffer. Pooled path:
// 0 allocs/op in steady state.
func BenchmarkSearchAppend(b *testing.B) {
	queries := dataset.RangeQueries(1024, 0.0001, rlrtree.NewRect(0, 0, 1, 1), 2)
	benchSizes(b, func(b *testing.B, tree *rlrtree.Tree) {
		var dst []any
		for i := 0; i < b.N; i++ {
			dst, _ = tree.SearchAppend(queries[i%len(queries)], dst[:0])
		}
	})
}

// BenchmarkSearchEach streams matches through a callback. Pooled path:
// 0 allocs/op.
func BenchmarkSearchEach(b *testing.B) {
	queries := dataset.RangeQueries(1024, 0.0001, rlrtree.NewRect(0, 0, 1, 1), 2)
	sink := func(rlrtree.Rect, any) {}
	benchSizes(b, func(b *testing.B, tree *rlrtree.Tree) {
		for i := 0; i < b.N; i++ {
			tree.SearchEach(queries[i%len(queries)], sink)
		}
	})
}

// BenchmarkKNN25 measures exact 25-NN (allocates the returned neighbor
// slice only).
func BenchmarkKNN25(b *testing.B) {
	points := dataset.KNNQueryPoints(1024, rlrtree.NewRect(0, 0, 1, 1), 3)
	benchSizes(b, func(b *testing.B, tree *rlrtree.Tree) {
		for i := 0; i < b.N; i++ {
			tree.KNN(points[i%len(points)], 25)
		}
	})
}

// BenchmarkKNNAppend25 reuses the caller's neighbor buffer. Pooled path:
// 0 allocs/op in steady state.
func BenchmarkKNNAppend25(b *testing.B) {
	points := dataset.KNNQueryPoints(1024, rlrtree.NewRect(0, 0, 1, 1), 3)
	benchSizes(b, func(b *testing.B, tree *rlrtree.Tree) {
		var dst []rlrtree.Neighbor
		for i := 0; i < b.N; i++ {
			dst, _ = tree.KNNAppend(points[i%len(points)], 25, dst[:0])
		}
	})
}

// BenchmarkKNNBestFirst25 measures the pooled best-first traversal across
// tree sizes (the k-sized result slice is its only allocation).
func BenchmarkKNNBestFirst25(b *testing.B) {
	points := dataset.KNNQueryPoints(1024, rlrtree.NewRect(0, 0, 1, 1), 3)
	benchSizes(b, func(b *testing.B, tree *rlrtree.Tree) {
		for i := 0; i < b.N; i++ {
			tree.KNNBestFirst(points[i%len(points)], 25)
		}
	})
}

// BenchmarkContainsPoint measures the point-containment probe. Pooled
// path: 0 allocs/op.
func BenchmarkContainsPoint(b *testing.B) {
	points := dataset.KNNQueryPoints(1024, rlrtree.NewRect(0, 0, 1, 1), 3)
	benchSizes(b, func(b *testing.B, tree *rlrtree.Tree) {
		for i := 0; i < b.N; i++ {
			tree.ContainsPoint(points[i%len(points)])
		}
	})
}
