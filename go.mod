module github.com/rlr-tree/rlrtree

go 1.22
