// Command rlr-train trains RLR-Tree policies and writes them to a JSON
// policy file loadable by the library and by rlr-query.
//
// Usage:
//
//	rlr-train -data train.csv -out policy.json            # combined (paper's RLR-Tree)
//	rlr-train -kind GAU -n 100000 -mode choose -out p.json
//	rlr-train -kind GAU -n 100000 -distill -out bundle.json
//
// Training data comes from a CSV file (-data) or a generated dataset
// (-kind/-n). Modes: choose (RL ChooseSubtree only), split (RL Split
// only), combined (alternating training of both agents; the default).
//
// With -distill the trained DQN is additionally compiled into a
// branch-table policy and a quantized fixed-point MLP, and the output
// becomes a v2 policy bundle carrying all backends; rlr-serve selects
// among them with -policy-kind. The printed agreement is the fraction
// of held-out states on which each compiled backend picks the same
// action as the MLP it was distilled from.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"github.com/rlr-tree/rlrtree/internal/cliutil"
	"github.com/rlr-tree/rlrtree/internal/core"
	"github.com/rlr-tree/rlrtree/internal/dataset"
	"github.com/rlr-tree/rlrtree/internal/geom"
)

func main() {
	var (
		dataPath    = flag.String("data", "", "training dataset CSV (2 or 4 columns)")
		kind        = flag.String("kind", "", "generate the training set instead: UNI, GAU, SKE, CHI, IND")
		n           = flag.Int("n", 100_000, "generated training-set size (with -kind)")
		seed        = flag.Int64("seed", 1, "random seed")
		mode        = flag.String("mode", "combined", "training mode: choose, split, combined")
		out         = flag.String("out", "policy.json", "output policy path")
		k           = flag.Int("k", core.DefaultK, "action-space size k")
		p           = flag.Int("p", core.DefaultP, "insertions per reward computation")
		queryFrac   = flag.Float64("train-query", core.DefaultTrainingQueryFrac, "training query area fraction")
		chooseEp    = flag.Int("choose-epochs", core.DefaultChooseEpochs, "ChooseSubtree training epochs")
		splitEp     = flag.Int("split-epochs", core.DefaultSplitEpochs, "Split training epochs")
		parts       = flag.Int("parts", core.DefaultParts, "dataset slices for Split training")
		maxE        = flag.Int("max-entries", 50, "node capacity M")
		minE        = flag.Int("min-entries", 20, "minimum node fill m")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "goroutines for reward evaluation (1 = sequential; policy is identical either way)")
		distill     = flag.Bool("distill", false, "distill the trained DQN into branch-table and quantized backends (writes a v2 bundle)")
		distillDep  = flag.Int("distill-depth", 0, "max branch-table depth (0 = distiller default)")
		distillSamp = flag.Int("distill-samples", 0, "synthetic states per operation for distillation (0 = distiller default)")
		quiet       = flag.Bool("quiet", false, "suppress progress output")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		cliutil.PrintVersion(os.Stdout, "rlr-train")
		return
	}

	var (
		train []geom.Rect
		err   error
	)
	switch {
	case *dataPath != "":
		train, err = dataset.ReadCSV(*dataPath)
	case *kind != "":
		train, err = dataset.Generate(dataset.Kind(*kind), *n, *seed)
	default:
		err = fmt.Errorf("one of -data or -kind is required")
	}
	if err != nil {
		fatal(err)
	}

	cfg := core.Config{
		K: *k, P: *p,
		TrainingQueryFrac: *queryFrac,
		ChooseEpochs:      *chooseEp, SplitEpochs: *splitEp, Parts: *parts,
		MaxEntries: *maxE, MinEntries: *minE,
		Seed:    *seed,
		Workers: *workers,
	}
	if !*quiet {
		cfg.Progress = func(msg string) { fmt.Fprintln(os.Stderr, "# "+msg) }
	}

	var (
		pol    *core.Policy
		report *core.TrainReport
	)
	switch *mode {
	case "choose":
		pol, report, err = core.TrainChoosePolicy(train, cfg)
	case "split":
		pol, report, err = core.TrainSplitPolicy(train, cfg)
	case "combined":
		pol, report, err = core.TrainCombined(train, cfg)
	default:
		err = fmt.Errorf("unknown mode %q (choose, split, combined)", *mode)
	}
	if err != nil {
		fatal(err)
	}
	if *distill {
		bundle, dr, err := core.Distill(pol, core.DistillConfig{
			MaxDepth: *distillDep,
			Samples:  *distillSamp,
			Data:     train,
			Seed:     *seed,
		})
		if err != nil {
			fatal(err)
		}
		if err := bundle.Save(*out); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "distilled: choose table agreement %.4f (quant %.4f) over %d states\n",
			dr.ChooseAgreement, dr.ChooseQuantAgreement, dr.ChooseStates)
		if pol.SplitNet != nil {
			fmt.Fprintf(os.Stderr, "distilled: split table agreement %.4f (quant %.4f) over %d states\n",
				dr.SplitAgreement, dr.SplitQuantAgreement, dr.SplitStates)
		}
	} else if err := pol.Save(*out); err != nil {
		fatal(err)
	}
	var inserts, rewardQueries int
	for _, ep := range report.Epochs {
		inserts += ep.Inserts
		rewardQueries += ep.RewardQueries
	}
	secs := report.Duration.Seconds()
	if secs > 0 {
		fmt.Fprintf(os.Stderr, "throughput: %.0f inserts/s, %.0f reward-queries/s (workers=%d)\n",
			float64(inserts)/secs, float64(rewardQueries)/secs, *workers)
	}
	fmt.Fprintf(os.Stderr, "trained %s policy on %d objects in %s (%d+%d updates); wrote %s\n",
		*mode, len(train), report.Duration.Round(1e6), report.ChooseUpdates, report.SplitUpdates, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rlr-train:", err)
	os.Exit(1)
}
