// Command rlr-query builds an index over a CSV dataset — an RLR-Tree when
// a trained policy is supplied, a heuristic baseline otherwise — and runs
// range or KNN queries against it, reporting results and node-access
// statistics.
//
// Usage:
//
//	rlr-query -data objs.csv -policy policy.json -range "0.1,0.1,0.3,0.4"
//	rlr-query -data objs.csv -index rstar -knn "0.5,0.5" -k 10
//	rlr-query -data objs.csv -queries queries.csv            # batch mode
//
// Index kinds for -index: rtree (Guttman), rstar, rrstar. A -policy file
// overrides -index; -policy-kind picks the inference backend among the
// ones the policy file carries (table and qmlp need a bundle written by
// rlr-train -distill).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/rlr-tree/rlrtree/internal/cliutil"
	"github.com/rlr-tree/rlrtree/internal/dataset"
)

func main() {
	var (
		dataPath    = flag.String("data", "", "dataset CSV (required)")
		policyPath  = flag.String("policy", "", "trained RLR-Tree policy JSON")
		policyKind  = flag.String("policy-kind", "auto", "inference backend with -policy: auto, mlp, table, qmlp")
		indexKind   = flag.String("index", "rtree", "heuristic index when no policy: rtree, rstar, rrstar")
		rangeQ      = flag.String("range", "", "one range query: minx,miny,maxx,maxy")
		knnQ        = flag.String("knn", "", "one KNN query point: x,y")
		k           = flag.Int("k", 10, "K for KNN queries")
		queriesCSV  = flag.String("queries", "", "batch of range queries from CSV (4 columns)")
		maxE        = flag.Int("max-entries", 50, "node capacity M")
		minE        = flag.Int("min-entries", 20, "minimum node fill m")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		cliutil.PrintVersion(os.Stdout, "rlr-query")
		return
	}

	if *dataPath == "" {
		fatal(fmt.Errorf("-data is required"))
	}
	data, err := dataset.ReadCSV(*dataPath)
	if err != nil {
		fatal(err)
	}

	tree, name, hot, err := cliutil.BuildIndexPolicy(*policyPath, *policyKind, *indexKind, *maxE, *minE)
	if err != nil {
		fatal(err)
	}
	if hot != nil && hot.Kind() != "heuristic" {
		name = fmt.Sprintf("%s(%s)", name, hot.Kind())
	}
	start := time.Now()
	for i, r := range data {
		tree.Insert(r, i)
	}
	fmt.Fprintf(os.Stderr, "built %s over %d objects in %s (height %d, %d nodes)\n",
		name, tree.Len(), time.Since(start).Round(time.Millisecond), tree.Height(), tree.NodeCount())

	switch {
	case *rangeQ != "":
		q, err := cliutil.ParseRect(*rangeQ)
		if err != nil {
			fatal(err)
		}
		results, stats := tree.Search(q)
		fmt.Printf("range %v: %d results, %d node accesses\n", q, len(results), stats.NodesAccessed)
		for _, id := range results {
			fmt.Printf("  object %v\n", id)
		}
	case *knnQ != "":
		p, err := cliutil.ParsePoint(*knnQ)
		if err != nil {
			fatal(err)
		}
		results, stats := tree.KNN(p, *k)
		fmt.Printf("knn %v k=%d: %d node accesses\n", p, *k, stats.NodesAccessed)
		for _, nb := range results {
			fmt.Printf("  object %v distsq=%g\n", nb.Data, nb.DistSq)
		}
	case *queriesCSV != "":
		queries, err := dataset.ReadCSV(*queriesCSV)
		if err != nil {
			fatal(err)
		}
		var accesses, results int
		start := time.Now()
		for _, q := range queries {
			stats := tree.SearchCount(q)
			accesses += stats.NodesAccessed
			results += stats.Results
		}
		elapsed := time.Since(start)
		fmt.Printf("%d queries: %d results, %d node accesses (%.1f avg), %s total (%.1fµs avg)\n",
			len(queries), results, accesses,
			float64(accesses)/float64(len(queries)),
			elapsed.Round(time.Millisecond),
			float64(elapsed.Microseconds())/float64(len(queries)))
	default:
		fatal(fmt.Errorf("one of -range, -knn, -queries is required"))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rlr-query:", err)
	os.Exit(1)
}
