// Command rlr-inspect builds an index over a CSV dataset and reports its
// structure: per-level node counts and fills, total MBR area and sibling
// overlap, memory footprint — and optionally renders the bounding-box
// hierarchy as an SVG, the quickest way to see why one construction policy
// beats another.
//
// Usage:
//
//	rlr-inspect -data objs.csv -index rstar
//	rlr-inspect -data objs.csv -policy policy.json -svg tree.svg -svg-level 2
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/rlr-tree/rlrtree/internal/cliutil"
	"github.com/rlr-tree/rlrtree/internal/dataset"
	"github.com/rlr-tree/rlrtree/internal/rtree"
)

func main() {
	var (
		dataPath    = flag.String("data", "", "dataset CSV (required)")
		policyPath  = flag.String("policy", "", "trained RLR-Tree policy JSON")
		indexKind   = flag.String("index", "rtree", "heuristic index when no policy: rtree, rstar, rrstar")
		maxE        = flag.Int("max-entries", 50, "node capacity M")
		minE        = flag.Int("min-entries", 20, "minimum node fill m")
		svgPath     = flag.String("svg", "", "write an SVG rendering of the MBR hierarchy here")
		svgLevel    = flag.Int("svg-level", 0, "deepest level to draw (0 = all)")
		svgObjects  = flag.Bool("svg-objects", false, "also draw leaf objects in the SVG")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		cliutil.PrintVersion(os.Stdout, "rlr-inspect")
		return
	}

	if *dataPath == "" {
		fatal(fmt.Errorf("-data is required"))
	}
	data, err := dataset.ReadCSV(*dataPath)
	if err != nil {
		fatal(err)
	}

	tree, name, err := cliutil.BuildIndex(*policyPath, *indexKind, *maxE, *minE)
	if err != nil {
		fatal(err)
	}
	for i, r := range data {
		tree.Insert(r, i)
	}
	if err := tree.Validate(); err != nil {
		fatal(fmt.Errorf("built tree failed validation: %w", err))
	}

	s := tree.Stats()
	fmt.Printf("index:        %s\n", name)
	fmt.Printf("objects:      %d\n", s.Size)
	fmt.Printf("height:       %d\n", s.Height)
	fmt.Printf("nodes:        %d (%d leaves)\n", s.Nodes, s.Leaves)
	fmt.Printf("avg fill:     %.1f%%\n", s.AvgFill*100)
	fmt.Printf("node area:    %.6g (sum over internal entries)\n", s.TotalArea)
	fmt.Printf("sibling ovlp: %.6g (sum of pairwise overlap)\n", s.TotalOvlp)
	fmt.Printf("memory:       %.1f MB\n", float64(s.MemoryBytes)/(1<<20))
	fmt.Printf("splits:       %d during construction\n", tree.Splits())

	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			fatal(err)
		}
		opts := rtree.SVGOptions{MaxLevel: *svgLevel, IncludeObjects: *svgObjects}
		if err := tree.WriteSVG(f, opts); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("svg:          %s\n", *svgPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rlr-inspect:", err)
	os.Exit(1)
}
