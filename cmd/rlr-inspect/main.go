// Command rlr-inspect builds an index over a CSV dataset and reports its
// structure: per-level node counts and fills, total MBR area and sibling
// overlap, memory footprint — and optionally renders the bounding-box
// hierarchy as an SVG, the quickest way to see why one construction policy
// beats another.
//
// The `wal` subcommand instead inspects a write-ahead log directory
// written by rlr-serve -wal-dir: per-segment LSN ranges, record counts
// by type, CRC verification, and the torn-tail report (what a recovery
// would truncate) — without modifying anything.
//
// The `policy` subcommand dumps a policy file: format version, tree
// parameters, which inference backends the bundle carries (MLP,
// distilled branch table, quantized MLP) with their shapes and sizes,
// and the file's sha256 — the quickest way to check what a serve
// deployment will actually load.
//
// Usage:
//
//	rlr-inspect -data objs.csv -index rstar
//	rlr-inspect -data objs.csv -policy policy.json -svg tree.svg -svg-level 2
//	rlr-inspect wal -dir ./wal
//	rlr-inspect wal -dir ./wal -records -strict
//	rlr-inspect policy bundle.json
package main

import (
	"crypto/sha256"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/rlr-tree/rlrtree/internal/cliutil"
	"github.com/rlr-tree/rlrtree/internal/core"
	"github.com/rlr-tree/rlrtree/internal/dataset"
	"github.com/rlr-tree/rlrtree/internal/mlp"
	"github.com/rlr-tree/rlrtree/internal/policy"
	"github.com/rlr-tree/rlrtree/internal/rtree"
	"github.com/rlr-tree/rlrtree/internal/wal"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "wal" {
		walMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "policy" {
		policyMain(os.Args[2:])
		return
	}
	var (
		dataPath    = flag.String("data", "", "dataset CSV (required)")
		policyPath  = flag.String("policy", "", "trained RLR-Tree policy JSON")
		indexKind   = flag.String("index", "rtree", "heuristic index when no policy: rtree, rstar, rrstar")
		maxE        = flag.Int("max-entries", 50, "node capacity M")
		minE        = flag.Int("min-entries", 20, "minimum node fill m")
		svgPath     = flag.String("svg", "", "write an SVG rendering of the MBR hierarchy here")
		svgLevel    = flag.Int("svg-level", 0, "deepest level to draw (0 = all)")
		svgObjects  = flag.Bool("svg-objects", false, "also draw leaf objects in the SVG")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		cliutil.PrintVersion(os.Stdout, "rlr-inspect")
		return
	}

	if *dataPath == "" {
		fatal(fmt.Errorf("-data is required"))
	}
	data, err := dataset.ReadCSV(*dataPath)
	if err != nil {
		fatal(err)
	}

	tree, name, err := cliutil.BuildIndex(*policyPath, *indexKind, *maxE, *minE)
	if err != nil {
		fatal(err)
	}
	for i, r := range data {
		tree.Insert(r, i)
	}
	if err := tree.Validate(); err != nil {
		fatal(fmt.Errorf("built tree failed validation: %w", err))
	}

	s := tree.Stats()
	fmt.Printf("index:        %s\n", name)
	fmt.Printf("objects:      %d\n", s.Size)
	fmt.Printf("height:       %d\n", s.Height)
	fmt.Printf("nodes:        %d (%d leaves)\n", s.Nodes, s.Leaves)
	fmt.Printf("avg fill:     %.1f%%\n", s.AvgFill*100)
	fmt.Printf("node area:    %.6g (sum over internal entries)\n", s.TotalArea)
	fmt.Printf("sibling ovlp: %.6g (sum of pairwise overlap)\n", s.TotalOvlp)
	fmt.Printf("memory:       %.1f MB\n", float64(s.MemoryBytes)/(1<<20))
	fmt.Printf("splits:       %d during construction\n", tree.Splits())

	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			fatal(err)
		}
		opts := rtree.SVGOptions{MaxLevel: *svgLevel, IncludeObjects: *svgObjects}
		if err := tree.WriteSVG(f, opts); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("svg:          %s\n", *svgPath)
	}
}

// policyMain is the `rlr-inspect policy` subcommand: a read-only report
// of what a policy file carries — backends, shapes, distillation depth,
// quantization scales, and a content digest for deployment bookkeeping.
func policyMain(args []string) {
	fs := flag.NewFlagSet("rlr-inspect policy", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("policy: exactly one policy file argument is required"))
	}
	path := fs.Arg(0)

	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	bundle, err := core.LoadBundle(path)
	if err != nil {
		if errors.Is(err, core.ErrPolicyVersionTooNew) {
			fatal(fmt.Errorf("%w — rebuild rlr-inspect from a newer checkout", err))
		}
		fatal(err)
	}

	fmt.Printf("file:          %s (%d bytes)\n", path, len(raw))
	fmt.Printf("sha256:        %x\n", sha256.Sum256(raw))
	if bundle.Distilled() {
		fmt.Printf("format:        v2 bundle (distilled)\n")
	} else {
		fmt.Printf("format:        v1 policy (MLP only)\n")
	}
	fmt.Printf("k / M / m:     %d / %d / %d\n", bundle.K, bundle.MaxEntries, bundle.MinEntries)
	fmt.Printf("padded state:  %v\n", bundle.PaddedState)
	fmt.Printf("split by area: %v\n", bundle.SplitSortByArea)

	describeOp := func(op string, net *mlp.Network, tbl *policy.Table, q *mlp.QuantNetwork) {
		if net == nil {
			fmt.Printf("%-7s        heuristic (no network)\n", op+":")
			return
		}
		fmt.Printf("%-7s        mlp %d->%d (%d params)\n", op+":", net.InputSize(), net.OutputSize(), net.NumParams())
		if tbl != nil {
			fmt.Printf("               table depth %d (%d/%d live internal nodes, %d leaves, %d actions)\n",
				tbl.Depth, tbl.InternalNodes(), len(tbl.Thresh), len(tbl.Leaf), tbl.Actions)
		}
		if q != nil {
			scales := make([]string, len(q.Layers))
			for i, l := range q.Layers {
				scales[i] = fmt.Sprintf("%.3g", l.WScale)
			}
			fmt.Printf("               quant int16 %d->%d (%d params, w-scales %s)\n",
				q.InputSize(), q.OutputSize(), q.NumParams(), strings.Join(scales, " "))
		}
	}
	describeOp("choose", bundle.ChooseNet, bundle.ChooseTable, bundle.ChooseQuant)
	describeOp("split", bundle.SplitNet, bundle.SplitTable, bundle.SplitQuant)

	kinds := []string{"mlp"}
	if bundle.ChooseTable != nil || bundle.SplitTable != nil {
		kinds = append(kinds, "table")
	}
	if bundle.ChooseQuant != nil || bundle.SplitQuant != nil {
		kinds = append(kinds, "qmlp")
	}
	fmt.Printf("backends:      %s\n", strings.Join(kinds, " "))
}

// walMain is the `rlr-inspect wal` subcommand: a read-only dump/verify
// pass over a WAL directory. Every frame's CRC is checked; the summary
// reports exactly the records a recovery would replay, so the
// insert_items line doubles as a crash-recovery oracle (the CI smoke
// test compares it against the restarted server's object count).
func walMain(args []string) {
	fs := flag.NewFlagSet("rlr-inspect wal", flag.ExitOnError)
	var (
		dir     = fs.String("dir", "", "WAL directory written by rlr-serve -wal-dir (required)")
		records = fs.Bool("records", false, "dump every valid record")
		strict  = fs.Bool("strict", false, "exit 1 when the log has torn or unreachable bytes")
	)
	fs.Parse(args)
	if *dir == "" {
		fatal(fmt.Errorf("wal: -dir is required"))
	}

	var (
		total, insertItems, deleteItems int
		setItems, delKeyItems           int
		firstLSN, lastLSN               uint64
	)
	dump := func(rec wal.Record) error {
		total++
		if firstLSN == 0 {
			firstLSN = rec.LSN
		}
		lastLSN = rec.LSN
		switch rec.Type {
		case wal.RecDelete:
			deleteItems++
		case wal.RecSet:
			setItems++
		case wal.RecDelKey:
			delKeyItems++
		default:
			insertItems += len(rec.IDs)
		}
		if *records {
			fmt.Printf("  lsn %-8d %-7s epoch %-3d items %d\n", rec.LSN, recTypeName(rec.Type), rec.Epoch, len(rec.IDs))
		}
		return nil
	}
	infos, err := wal.Inspect(*dir, dump)
	if err != nil {
		fatal(err)
	}
	if len(infos) == 0 {
		fmt.Printf("wal %s: no segments\n", *dir)
		return
	}

	damaged := false
	for _, info := range infos {
		fmt.Printf("segment %s  lsn %d..%d  records %d (%d ins, %d del, %d batch)  items %d  %d bytes\n",
			info.Path, info.FirstLSN, info.LastLSN, info.Records,
			info.Inserts, info.Deletes, info.Batches, info.Items, info.SizeBytes)
		if info.Torn != "" {
			damaged = true
			fmt.Printf("  TORN: %s — recovery keeps %d of %d bytes\n", info.Torn, info.ValidLen, info.SizeBytes)
		}
		if info.Unreachable {
			damaged = true
			fmt.Printf("  UNREACHABLE: an earlier segment is torn or an LSN hole precedes this one; recovery drops it\n")
		}
	}
	fmt.Printf("segments:     %d\n", len(infos))
	fmt.Printf("lsn:          %d..%d\n", firstLSN, lastLSN)
	fmt.Printf("records:      %d\n", total)
	fmt.Printf("insert_items: %d\n", insertItems)
	fmt.Printf("delete_items: %d\n", deleteItems)
	fmt.Printf("set_items:    %d\n", setItems)
	fmt.Printf("delkey_items: %d\n", delKeyItems)
	if damaged && *strict {
		os.Exit(1)
	}
}

func recTypeName(rt wal.RecordType) string {
	switch rt {
	case wal.RecInsert:
		return "insert"
	case wal.RecDelete:
		return "delete"
	case wal.RecInsertBatch:
		return "batch"
	case wal.RecSet:
		return "set"
	case wal.RecDelKey:
		return "del-key"
	default:
		return fmt.Sprintf("type(%d)", rt)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rlr-inspect:", err)
	os.Exit(1)
}
