// Command rlr-serve runs the HTTP/JSON spatial query service of
// internal/server over an RLR-Tree (with -policy) or a heuristic R-Tree
// baseline (with -index).
//
// Usage:
//
//	rlr-serve -addr :8080 -snapshot tree.gob -snapshot-every 30s
//	rlr-serve -addr :8080 -policy policy.json -snapshot tree.gob
//	rlr-serve -addr :8080 -policy distilled.json -policy-kind table
//	rlr-serve -addr :8080 -shards 4
//	rlr-serve -addr :8080 -snapshot tree.gob -wal-dir ./wal -wal-fsync always
//
// With -policy the insert path decides through a hot-swappable policy
// engine; -policy-kind picks the inference backend (auto, mlp, table,
// qmlp — table/qmlp need a bundle distilled with rlr-train -distill).
// POST /policy swaps the backend (and optionally reloads the bundle
// from disk) without a restart, and /stats grows a "policy" section
// with per-backend insert counters.
//
// With -wal-dir every mutation is appended to a write-ahead log before
// it is applied, so a crash (power loss, kill -9) loses at most the
// writes the fsync policy had not yet made durable; on restart the
// server replays the log past the restored snapshot's LSN. -wal-fsync
// picks the durability/latency trade-off: "always" fsyncs every append,
// "interval" batches fsyncs a few milliseconds apart (group commit),
// "none" leaves flushing to the OS.
//
// With -shards N (N > 1) the server fronts a shard.ShardedTree — N
// independent trees behind a Z-order spatial router with per-shard
// locks, so concurrent inserters stop serializing on one write lock.
// Queries prune shards through per-shard bounds summaries (selective
// queries probe ~1–2 shards instead of all N), and -rebalance-every
// enables background hot-cell migration that adapts the cell→shard
// assignment to the observed workload. /stats then carries a per-shard
// breakdown plus the fan-out counters, and snapshots use the sharded
// container format (a -shards server cannot restore a single-tree
// snapshot file, or vice versa).
//
// On startup the server restores the snapshot file when it exists, so a
// restart resumes with the indexed data intact; on SIGINT/SIGTERM it
// drains in-flight requests and writes a final snapshot. GET /debug/vars
// exposes the standard expvar page including the server's metrics.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/rlr-tree/rlrtree/internal/cliutil"
	"github.com/rlr-tree/rlrtree/internal/collection"
	"github.com/rlr-tree/rlrtree/internal/core"
	"github.com/rlr-tree/rlrtree/internal/rtree"
	"github.com/rlr-tree/rlrtree/internal/server"
	"github.com/rlr-tree/rlrtree/internal/shard"
	"github.com/rlr-tree/rlrtree/internal/wal"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		policyPath  = flag.String("policy", "", "trained RLR-Tree policy JSON")
		policyKind  = flag.String("policy-kind", "auto", "inference backend with -policy: auto, mlp, table, qmlp")
		indexKind   = flag.String("index", "rtree", "heuristic index when no policy: rtree, rstar, rrstar")
		maxE        = flag.Int("max-entries", 50, "node capacity M")
		minE        = flag.Int("min-entries", 20, "minimum node fill m")
		shards      = flag.Int("shards", 1, "independent index shards (>1 enables the Z-order sharded tree)")
		snapPath    = flag.String("snapshot", "", "snapshot file (restore on start, write on shutdown)")
		snapEvery   = flag.Duration("snapshot-every", 0, "background snapshot interval (0 disables)")
		walDir      = flag.String("wal-dir", "", "write-ahead log directory (empty disables durability logging)")
		walFsync    = flag.String("wal-fsync", "interval", "WAL fsync policy: always, interval, none")
		walSegBytes = flag.Int64("wal-segment-bytes", wal.DefaultSegmentBytes, "WAL segment rotation threshold in bytes")
		rebalEvery  = flag.Duration("rebalance-every", 0, "background hot-cell rebalance interval for sharded indexes (0 disables)")
		rebalMax    = flag.Int("rebalance-max-cells", server.DefaultRebalanceMaxCells, "maximum cells migrated per rebalance tick")
		reqTimeout  = flag.Duration("timeout", server.DefaultRequestTimeout, "per-request timeout")
		maxBody     = flag.Int64("max-body", server.DefaultMaxBodyBytes, "maximum request body bytes")
		maxResults  = flag.Int("max-results", server.DefaultMaxResults, "maximum ids per /search response")
		pprofOn     = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (CPU, heap, allocs profiles)")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		cliutil.PrintVersion(os.Stdout, "rlr-serve")
		return
	}

	logger := log.New(os.Stderr, "rlr-serve: ", log.LstdFlags)

	opts, name, hot, err := cliutil.IndexOptionsPolicy(*policyPath, *policyKind, *indexKind, *maxE, *minE)
	if err != nil {
		if errors.Is(err, core.ErrPolicyVersionTooNew) {
			logger.Fatalf("%v — rebuild rlr-serve from a newer checkout, or re-train the policy with an rlr-train matching this build", err)
		}
		logger.Fatal(err)
	}
	if hot != nil {
		logger.Printf("policy: %s backend (choose=%s split=%s)", hot.Kind(), hot.Stats().ChooseBackend, hot.Stats().SplitBackend)
	}
	var (
		index      server.Index
		snapLSN    uint64 // WAL LSN the restored snapshot covers (0: replay all)
		keyedPairs []collection.KeyRect
	)
	if *shards > 1 {
		sopts := shard.Options{Shards: *shards, Tree: opts}
		var st *shard.ShardedTree
		if *snapPath != "" {
			restored, pairs, lsn, err := server.LoadKeyedShardedSnapshotLSN(*snapPath, sopts)
			switch {
			case err == nil:
				st, snapLSN, keyedPairs = restored, lsn, pairs
				logger.Printf("restored %d objects (%d keyed) from %s (%d shards)", st.Len(), len(pairs), *snapPath, st.NumShards())
			case errors.Is(err, os.ErrNotExist):
				logger.Printf("no snapshot at %s, starting empty", *snapPath)
			default:
				logger.Fatal(err)
			}
		}
		if st == nil {
			if st, err = shard.New(sopts); err != nil {
				logger.Fatal(err)
			}
		}
		name = fmt.Sprintf("%s[%d shards]", name, st.NumShards())
		index = st
	} else {
		tree, err := rtree.NewChecked(opts)
		if err != nil {
			logger.Fatal(err)
		}
		if *snapPath != "" {
			restored, pairs, lsn, err := server.LoadKeyedSnapshotLSN(*snapPath, opts)
			switch {
			case err == nil:
				tree, snapLSN, keyedPairs = restored, lsn, pairs
				logger.Printf("restored %d objects (%d keyed) from %s (height %d)", tree.Len(), len(pairs), *snapPath, tree.Height())
			case errors.Is(err, os.ErrNotExist):
				logger.Printf("no snapshot at %s, starting empty", *snapPath)
			default:
				logger.Fatal(err)
			}
		}
		index = rtree.NewConcurrent(tree)
	}

	// The keyed layer restores from the snapshot's keyed section over the
	// restored index, then WAL replay applies keyed records through it.
	coll := collection.Restore(index, keyedPairs)

	// The WAL opens after the snapshot restore (its recovery needs the
	// snapshot's LSN) and before the server exists: replay must finish
	// before the first request is admitted.
	var (
		theWAL     *wal.WAL
		autoIDSeed uint64
	)
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*walFsync)
		if err != nil {
			logger.Fatal(err)
		}
		theWAL, err = wal.Open(wal.Options{
			Dir:          *walDir,
			SegmentBytes: *walSegBytes,
			Sync:         policy,
			Epoch:        uint32(*shards),
		})
		if err != nil {
			logger.Fatal(err)
		}
		res, err := server.Recover(theWAL, snapLSN, index, coll, logger.Printf)
		if err != nil {
			logger.Fatal(fmt.Errorf("wal recovery: %w", err))
		}
		autoIDSeed = res.MaxAutoID
		logger.Printf("wal: replayed %d records (%d objects inserted or deleted, %d below snapshot LSN %d) from %s in %s; index holds %d objects",
			res.Stats.Records, res.Stats.Items, res.Stats.Skipped, snapLSN, *walDir, res.Stats.Duration.Round(time.Microsecond), index.Len())
	}

	srv, err := server.New(server.Config{
		Index:          index,
		IndexName:      name,
		SnapshotPath:   *snapPath,
		SnapshotEvery:  *snapEvery,
		RequestTimeout: *reqTimeout,
		MaxBodyBytes:   *maxBody,
		MaxResults:     *maxResults,
		WAL:            theWAL,
		AutoIDSeed:     autoIDSeed,
		Collection:     coll,
		Policy:         hot,
		Logf:           logger.Printf,

		RebalanceEvery:    *rebalEvery,
		RebalanceMaxCells: *rebalMax,
	})
	if err != nil {
		logger.Fatal(err)
	}
	srv.PublishExpvar()
	srv.Start()

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())
	if *pprofOn {
		// Mounted outside srv.Handler() so profiles escape the request
		// timeout (a 30 s CPU profile outlives any query deadline).
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Printf("pprof enabled on /debug/pprof/")
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Printf("serving %s index on %s (%d objects)", name, *addr, index.Len())

	select {
	case err := <-errCh:
		logger.Fatal(err)
	case <-ctx.Done():
	}
	logger.Printf("shutting down: draining requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("drain: %v", err)
	}
	if err := srv.Close(); err != nil && *snapPath != "" {
		logger.Fatal(err)
	}
	if theWAL != nil {
		if err := theWAL.Close(); err != nil {
			logger.Printf("wal close: %v", err)
		}
	}
	fmt.Fprintln(os.Stderr, "rlr-serve: bye")
}
