package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/rlr-tree/rlrtree/internal/dataset"
	"github.com/rlr-tree/rlrtree/internal/geom"
)

// The moving-objects scenario: the fleet-tracking workload the keyed
// API exists for. Phase 1 SETs n keyed objects at dataset-generated
// positions; phase 2 random-walks them with POST /set for the given
// duration — every update replaces the key's previous position, so the
// server's object count must hold exactly steady while the sets counter
// climbs. Each worker owns a disjoint subset of the keys (no two
// workers move the same object), matching real trackers where one
// device reports one vehicle.
//
// Updates ride a pipelined HTTP/1.1 connection per worker: `pipeline`
// requests are serialized into one buffer, written with one syscall,
// and the responses read back in order. net/http's client cannot
// pipeline and pays several goroutine handoffs per request — on a
// single-core bench box that transport overhead, not the server,
// becomes the throughput ceiling.

// collCounters mirrors the /stats "collection" section.
type collCounters struct {
	Objects        int64  `json:"objects"`
	Sets           uint64 `json:"sets"`
	UpdatesInPlace uint64 `json:"updates_in_place"`
	Dels           uint64 `json:"dels"`
}

func fetchCollection(client *http.Client, addr string) (collCounters, error) {
	resp, err := client.Get(addr + "/stats")
	if err != nil {
		return collCounters{}, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return collCounters{}, fmt.Errorf("GET /stats: HTTP %d", resp.StatusCode)
	}
	var body struct {
		Collection collCounters `json:"collection"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return collCounters{}, err
	}
	return body.Collection, nil
}

// pipeConn is a hand-rolled pipelined HTTP/1.1 client connection: batch
// POST /set requests into one write, then parse the responses in order.
type pipeConn struct {
	c    net.Conn
	br   *bufio.Reader
	host string
	buf  []byte // request batch under construction
	body []byte // scratch for one JSON body
}

func dialPipe(addr string) (*pipeConn, error) {
	u, err := url.Parse(addr)
	if err != nil {
		return nil, fmt.Errorf("bad addr %q: %w", addr, err)
	}
	if u.Scheme != "http" {
		return nil, fmt.Errorf("moving scenario needs plain http, got %q", u.Scheme)
	}
	c, err := net.Dial("tcp", u.Host)
	if err != nil {
		return nil, err
	}
	return &pipeConn{
		c:    c,
		br:   bufio.NewReaderSize(c, 16<<10),
		host: u.Host,
	}, nil
}

func (p *pipeConn) close() { p.c.Close() }

// addSet appends one POST /set request for key@r to the batch buffer.
func (p *pipeConn) addSet(key string, r geom.Rect) {
	b := p.body[:0]
	b = append(b, `{"key":"`...)
	b = append(b, key...) // keys here are mv-%06d: no JSON escaping needed
	b = append(b, `","rect":[`...)
	b = strconv.AppendFloat(b, r.MinX, 'g', -1, 64)
	b = append(b, ',')
	b = strconv.AppendFloat(b, r.MinY, 'g', -1, 64)
	b = append(b, ',')
	b = strconv.AppendFloat(b, r.MaxX, 'g', -1, 64)
	b = append(b, ',')
	b = strconv.AppendFloat(b, r.MaxY, 'g', -1, 64)
	b = append(b, "]}"...)
	p.body = b

	p.buf = append(p.buf, "POST /set HTTP/1.1\r\nHost: "...)
	p.buf = append(p.buf, p.host...)
	p.buf = append(p.buf, "\r\nContent-Type: application/json\r\nContent-Length: "...)
	p.buf = strconv.AppendInt(p.buf, int64(len(b)), 10)
	p.buf = append(p.buf, "\r\n\r\n"...)
	p.buf = append(p.buf, b...)
}

// flush writes the batch and reads n responses, returning how many came
// back 200. A transport error is fatal for the connection.
func (p *pipeConn) flush(n int) (ok int, err error) {
	if _, err := p.c.Write(p.buf); err != nil {
		return 0, err
	}
	p.buf = p.buf[:0]
	for i := 0; i < n; i++ {
		status, err := p.readResponse()
		if err != nil {
			return ok, fmt.Errorf("read pipelined response %d/%d: %w", i+1, n, err)
		}
		if status == http.StatusOK {
			ok++
		}
	}
	return ok, nil
}

// readResponse parses one keep-alive HTTP/1.1 response just enough to
// keep the stream framed: status code, Content-Length, discard body.
// http.ReadResponse would allocate a Response and a header map per
// call — at tens of thousands of responses a second on a shared core
// that allocation churn is the load generator stealing CPU from the
// server under test.
func (p *pipeConn) readResponse() (status int, err error) {
	line, err := p.br.ReadSlice('\n')
	if err != nil {
		return 0, err
	}
	// "HTTP/1.1 200 OK\r\n" — the code sits at bytes 9..12.
	if len(line) < 12 || string(line[:5]) != "HTTP/" {
		return 0, fmt.Errorf("malformed status line %q", line)
	}
	for _, c := range line[9:12] {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("malformed status line %q", line)
		}
		status = status*10 + int(c-'0')
	}
	contentLength := -1
	for {
		h, err := p.br.ReadSlice('\n')
		if err != nil {
			return 0, err
		}
		if len(h) <= 2 { // bare "\r\n": end of headers
			break
		}
		const clPrefix = "Content-Length:"
		if len(h) > len(clPrefix) && string(h[:len(clPrefix)]) == clPrefix {
			v := 0
			for _, c := range h[len(clPrefix):] {
				if c >= '0' && c <= '9' {
					v = v*10 + int(c-'0')
				}
			}
			contentLength = v
		} else if len(h) >= 26 && string(h[:17]) == "Transfer-Encoding" {
			return 0, fmt.Errorf("unexpected chunked response")
		}
	}
	if contentLength < 0 {
		return 0, fmt.Errorf("response without Content-Length")
	}
	if _, err := p.br.Discard(contentLength); err != nil {
		return 0, err
	}
	return status, nil
}

func movingScenario(client *http.Client, addr, kind string, n, workers, depth int, rate float64, duration time.Duration, seed int64) error {
	if workers < 1 {
		workers = 1
	}
	if n < workers {
		workers = n
	}
	if depth < 1 {
		depth = 1
	}
	positions, err := dataset.Generate(dataset.Kind(kind), n, seed)
	if err != nil {
		return err
	}
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("mv-%06d", i)
	}
	if _, err := fetchCollection(client, addr); err != nil {
		return fmt.Errorf("moving: server has no /stats collection section (too old?): %w", err)
	}

	// Phase 1: place the fleet through the same pipelined SET path the
	// churn phase measures (there is deliberately no batch endpoint — the
	// scenario exists to exercise per-update cost).
	placeStart := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pc, err := dialPipe(addr)
			if err != nil {
				errs <- err
				return
			}
			defer pc.close()
			pending := 0
			for i := w; i < n; i += workers {
				pc.addSet(keys[i], positions[i])
				if pending++; pending == depth {
					ok, err := pc.flush(pending)
					if err != nil {
						errs <- err
						return
					}
					if ok != pending {
						errs <- fmt.Errorf("placement: %d of %d SETs rejected", pending-ok, pending)
						return
					}
					pending = 0
				}
			}
			if pending > 0 {
				ok, err := pc.flush(pending)
				if err != nil {
					errs <- err
					return
				}
				if ok != pending {
					errs <- fmt.Errorf("placement: %d of %d SETs rejected", pending-ok, pending)
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}
	fmt.Printf("moving: placed %d keyed objects (%s) in %s\n",
		n, kind, time.Since(placeStart).Round(time.Millisecond))

	// Churn baseline taken AFTER placement: re-running against a server
	// that already holds these keys turns placements into moves, so the
	// only counters with a fixed contract are the churn-phase deltas.
	mid, err := fetchCollection(client, addr)
	if err != nil {
		return err
	}
	if mid.Objects < int64(n) {
		return fmt.Errorf("moving: %d objects after placing %d — SETs were dropped", mid.Objects, n)
	}

	// Phase 2: random-walk churn. Worker w owns keys[w], keys[w+workers],
	// ... and paces its own stream at rate/workers updates/s. Latency is
	// batch round-trip: the time from the pipelined write until each
	// response in the batch is parsed.
	var (
		latMu    sync.Mutex
		allLats  []time.Duration
		updates  int64
		failures int64
	)
	perBatch := time.Duration(0)
	if rate > 0 {
		perBatch = time.Duration(float64(time.Second) * float64(workers*depth) / rate)
	}
	churnStart := time.Now()
	deadline := churnStart.Add(duration)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pc, err := dialPipe(addr)
			if err != nil {
				errs <- err
				return
			}
			defer pc.close()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			lats := make([]time.Duration, 0, 4096)
			var done, failed int64
			owned := (n - w + workers - 1) / workers
			batch := make([]int, 0, depth)
			staged := make([]geom.Rect, 0, depth)
			next := churnStart
			for time.Now().Before(deadline) {
				if perBatch > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(perBatch)
				}
				batch = batch[:0]
				staged = staged[:0]
				for len(batch) < depth {
					i := w + rng.Intn(owned)*workers
					r := positions[i]
					// Random-walk step, ~1% of the unit square per move,
					// reflecting off the world edges.
					w2, h := r.Width(), r.Height()
					cx := clampWalk(r.MinX+(rng.Float64()-0.5)*0.02, 1-w2)
					cy := clampWalk(r.MinY+(rng.Float64()-0.5)*0.02, 1-h)
					r = geom.Rect{MinX: cx, MinY: cy, MaxX: cx + w2, MaxY: cy + h}
					pc.addSet(keys[i], r)
					batch = append(batch, i)
					staged = append(staged, r)
				}
				start := time.Now()
				ok, err := pc.flush(len(batch))
				if err != nil {
					errs <- err
					return
				}
				rtt := time.Since(start)
				for k := 0; k < ok; k++ {
					positions[batch[k]] = staged[k] // owned by this worker: no race
					lats = append(lats, rtt)
				}
				done += int64(ok)
				failed += int64(len(batch) - ok)
			}
			latMu.Lock()
			allLats = append(allLats, lats...)
			updates += done
			failures += failed
			latMu.Unlock()
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}
	elapsed := time.Since(churnStart)

	if len(allLats) == 0 {
		return fmt.Errorf("moving: all %d update attempts failed", failures)
	}
	sort.Slice(allLats, func(i, j int) bool { return allLats[i] < allLats[j] })
	var total time.Duration
	for _, l := range allLats {
		total += l
	}
	ups := float64(updates) / elapsed.Seconds()
	fmt.Printf("moving: %d updates, %d errors in %s — %.0f updates/s (%d conns × pipeline %d)",
		updates, failures, elapsed.Round(time.Millisecond), ups, workers, depth)
	if rate > 0 {
		fmt.Printf(" (target %.0f)", rate)
	}
	fmt.Println()
	fmt.Printf("        batch rtt avg %s  p50 %s  p90 %s  p99 %s  max %s\n",
		(total / time.Duration(len(allLats))).Round(time.Microsecond),
		percentile(allLats, 0.50).Round(time.Microsecond),
		percentile(allLats, 0.90).Round(time.Microsecond),
		percentile(allLats, 0.99).Round(time.Microsecond),
		allLats[len(allLats)-1].Round(time.Microsecond))

	// The churn invariant: updates moved objects, they did not create or
	// destroy them.
	after, err := fetchCollection(client, addr)
	if err != nil {
		return err
	}
	fmt.Printf("        /stats collection: objects %d, sets +%d, updates_in_place +%d\n",
		after.Objects, after.Sets-mid.Sets, after.UpdatesInPlace-mid.UpdatesInPlace)
	if after.Objects != mid.Objects {
		return fmt.Errorf("moving: object count drifted during churn: %d before, %d after — SET leaked or lost objects",
			mid.Objects, after.Objects)
	}
	if got := after.Sets - mid.Sets; got != uint64(updates) {
		return fmt.Errorf("moving: sets counter grew %d, want %d (acknowledged updates)", got, updates)
	}
	// Every churn SET replaced an existing key, so each one must have
	// counted as an in-place update.
	if got := after.UpdatesInPlace - mid.UpdatesInPlace; got != uint64(updates) {
		return fmt.Errorf("moving: updates_in_place grew %d, want %d", got, updates)
	}
	return nil
}

// clampWalk keeps a random-walk coordinate inside [0, max], reflecting
// small overshoots off the boundary.
func clampWalk(v, max float64) float64 {
	if v < 0 {
		v = -v
	}
	if v > max {
		v = max - (v - max)
	}
	if v < 0 {
		return 0
	}
	if v > max {
		return max
	}
	return v
}
