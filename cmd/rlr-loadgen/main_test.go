package main

import (
	"testing"
	"time"
)

// TestPercentileNearestRank pins the nearest-rank definition on a known
// latency slice, including the small-run tails the floored index got
// wrong: on 100 sorted samples 1ms..100ms, p99 must be the 99th-smallest
// value's successor rank (ceil(0.99·100) = 99 → 99ms) and p100 the max.
func TestPercentileNearestRank(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }

	lats100 := make([]time.Duration, 100)
	for i := range lats100 {
		lats100[i] = ms(i + 1)
	}
	lats10 := make([]time.Duration, 10)
	for i := range lats10 {
		lats10[i] = ms(i + 1)
	}

	cases := []struct {
		name string
		lats []time.Duration
		q    float64
		want time.Duration
	}{
		{"empty", nil, 0.99, 0},
		{"single", []time.Duration{ms(7)}, 0.5, ms(7)},
		{"single-p99", []time.Duration{ms(7)}, 0.99, ms(7)},
		{"p50-of-10", lats10, 0.50, ms(5)},
		{"p90-of-10", lats10, 0.90, ms(9)},
		// The seed's floored index reported int(0.99*9) = 8 → 9ms here,
		// i.e. p99 of a 10-sample run silently excluded the maximum.
		{"p99-of-10", lats10, 0.99, ms(10)},
		{"p100-of-10", lats10, 1.0, ms(10)},
		{"p50-of-100", lats100, 0.50, ms(50)},
		{"p99-of-100", lats100, 0.99, ms(99)},
		{"p999-of-100", lats100, 0.999, ms(100)},
		{"q-zero", lats10, 0, ms(1)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := percentile(c.lats, c.q); got != c.want {
				t.Fatalf("percentile(n=%d, q=%g) = %v, want %v", len(c.lats), c.q, got, c.want)
			}
		})
	}
}
