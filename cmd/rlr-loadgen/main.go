// Command rlr-loadgen replays a dataset-generated workload against a
// running rlr-serve instance and reports throughput and latency
// percentiles, making the serving path itself benchmarkable.
//
// Usage:
//
//	rlr-loadgen -addr http://localhost:8080 -n 50000 -queries 5000 -qps 2000
//	rlr-loadgen -addr http://localhost:8080 -load=false -queries 10000 -knn-frac 0.2
//
// Phase 1 (unless -load=false) bulk loads -n objects of the chosen
// dataset kind through POST /insert in -batch-sized batches from -ic
// concurrent inserters (-ic > 1 exercises the server's write-side
// concurrency — the case a -shards rlr-serve exists for). Phase 2
// issues -queries window queries (area fraction -size) and KNN queries
// (fraction -knn-frac, k = -k) from -c concurrent workers, paced at
// -qps requests/second (0 = closed loop, as fast as the server allows).
//
// -scenario moving switches to the live-update churn workload the keyed
// API exists for: SET -n objects by key, then have -c workers move them
// with random-walk POST /set updates for -duration, paced at -rate
// total updates/second (0 = closed loop). Because every move is a SET
// of an existing key, the object count must stay exactly -n while the
// sets counter grows — the scenario fetches /stats at the end and fails
// loudly if the server leaked or lost objects.
//
//	rlr-loadgen -addr http://localhost:8080 -scenario moving -n 10000 -duration 10s
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/rlr-tree/rlrtree/internal/cliutil"
	"github.com/rlr-tree/rlrtree/internal/dataset"
	"github.com/rlr-tree/rlrtree/internal/geom"
)

func main() {
	var (
		addr        = flag.String("addr", "http://localhost:8080", "base URL of rlr-serve")
		kind        = flag.String("kind", "UNI", "dataset kind: UNI, GAU, SKE, CHI, IND")
		n           = flag.Int("n", 50_000, "objects to load in phase 1")
		batch       = flag.Int("batch", 1000, "insert batch size")
		insWorkers  = flag.Int("ic", 1, "concurrent insert workers in the load phase")
		load        = flag.Bool("load", true, "run the load phase")
		queries     = flag.Int("queries", 5000, "total queries in phase 2")
		size        = flag.Float64("size", 0.0001, "window query area as a fraction of the unit square")
		knnFrac     = flag.Float64("knn-frac", 0, "fraction of queries that are KNN")
		k           = flag.Int("k", 10, "K for KNN queries")
		qps         = flag.Float64("qps", 0, "target queries/second (0 = closed loop)")
		workers     = flag.Int("c", 8, "concurrent query workers")
		seed        = flag.Int64("seed", 1, "random seed")
		scenario    = flag.String("scenario", "", `workload scenario: "" (load+query) or "moving" (keyed update churn)`)
		rate        = flag.Float64("rate", 0, "moving scenario: target updates/second across all workers (0 = closed loop)")
		duration    = flag.Duration("duration", 10*time.Second, "moving scenario: churn phase length")
		pipeline    = flag.Int("pipeline", 8, "moving scenario: pipelined requests per connection write")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		cliutil.PrintVersion(os.Stdout, "rlr-loadgen")
		return
	}

	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConnsPerHost: *workers * 2,
		},
	}

	switch *scenario {
	case "moving":
		if err := movingScenario(client, *addr, *kind, *n, *workers, *pipeline, *rate, *duration, *seed); err != nil {
			fatal(err)
		}
		return
	case "":
	default:
		fatal(fmt.Errorf("unknown -scenario %q (want \"moving\" or empty)", *scenario))
	}

	if *load {
		if err := loadPhase(client, *addr, *kind, *n, *batch, *insWorkers, *seed); err != nil {
			fatal(err)
		}
	}
	if *queries > 0 {
		if err := queryPhase(client, *addr, *queries, *size, *knnFrac, *k, *qps, *workers, *seed); err != nil {
			fatal(err)
		}
	}
}

type wireItem struct {
	ID   string    `json:"id"`
	Rect []float64 `json:"rect"`
}

func loadPhase(client *http.Client, addr, kind string, n, batch, workers int, seed int64) error {
	data, err := dataset.Generate(dataset.Kind(kind), n, seed)
	if err != nil {
		return err
	}
	if workers < 1 {
		workers = 1
	}
	postBatch := func(lo int) error {
		hi := min(lo+batch, len(data))
		items := make([]wireItem, hi-lo)
		for i, r := range data[lo:hi] {
			items[i] = wireItem{
				ID:   fmt.Sprintf("obj-%07d", lo+i),
				Rect: []float64{r.MinX, r.MinY, r.MaxX, r.MaxY},
			}
		}
		body, err := json.Marshal(map[string]any{"items": items})
		if err != nil {
			return err
		}
		resp, err := client.Post(addr+"/insert", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("insert batch [%d:%d]: HTTP %d", lo, hi, resp.StatusCode)
		}
		return nil
	}

	start := time.Now()
	if workers == 1 {
		for lo := 0; lo < len(data); lo += batch {
			if err := postBatch(lo); err != nil {
				return err
			}
		}
	} else {
		// Concurrent inserters: batches fan out over a worker pool, so the
		// server sees `workers` simultaneous write streams. The first error
		// is reported after all in-flight batches drain.
		work := make(chan int, workers)
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for lo := range work {
					if err := postBatch(lo); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
					}
				}
			}()
		}
		for lo := 0; lo < len(data); lo += batch {
			work <- lo
		}
		close(work)
		wg.Wait()
		if firstErr != nil {
			return firstErr
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("load:   %d objects (%s) in %s — %.0f inserts/s (batch %d, %d workers)\n",
		n, kind, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds(), batch, workers)
	return nil
}

// queryResult is one completed request's measurement.
type queryResult struct {
	latency time.Duration
	nodes   int
	isKNN   bool
	err     error
}

// fanoutCounters mirrors the server's /stats "fanout" section (present
// only when the served index prunes shard probes).
type fanoutCounters struct {
	Queries       uint64 `json:"queries"`
	ShardsProbed  uint64 `json:"shards_probed"`
	ShardsPruned  uint64 `json:"shards_pruned"`
	CellsMigrated uint64 `json:"cells_migrated"`
}

// fetchFanout reads the fan-out counters from GET /stats, returning nil
// when the server does not expose them (single-tree index, old server).
func fetchFanout(client *http.Client, addr string) *fanoutCounters {
	resp, err := client.Get(addr + "/stats")
	if err != nil {
		return nil
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var body struct {
		Fanout *fanoutCounters `json:"fanout"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil
	}
	return body.Fanout
}

func queryPhase(client *http.Client, addr string, queries int, size, knnFrac float64, k int, qps float64, workers int, seed int64) error {
	world := geom.NewRect(0, 0, 1, 1)
	windows := dataset.RangeQueries(queries, size, world, seed+1)
	points := dataset.KNNQueryPoints(queries, world, seed+2)
	rng := rand.New(rand.NewSource(seed + 3))

	urls := make([]string, queries)
	kinds := make([]bool, queries) // true = KNN
	for i := 0; i < queries; i++ {
		if rng.Float64() < knnFrac {
			p := points[i]
			urls[i] = fmt.Sprintf("%s/knn?point=%g,%g&k=%d", addr, p.X, p.Y, k)
			kinds[i] = true
		} else {
			q := windows[i]
			urls[i] = fmt.Sprintf("%s/search?rect=%g,%g,%g,%g", addr, q.MinX, q.MinY, q.MaxX, q.MaxY)
		}
	}

	// Fan-out counters are cumulative; sample them around the phase so
	// the delta covers exactly this query stream.
	fanBefore := fetchFanout(client, addr)

	work := make(chan int, workers)
	results := make(chan queryResult, queries)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				start := time.Now()
				resp, err := client.Get(urls[i])
				r := queryResult{isKNN: kinds[i], err: err}
				if err == nil {
					var body struct {
						NodesAccessed int `json:"nodes_accessed"`
					}
					if resp.StatusCode != http.StatusOK {
						r.err = fmt.Errorf("HTTP %d", resp.StatusCode)
					} else if derr := json.NewDecoder(resp.Body).Decode(&body); derr != nil {
						r.err = derr
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					r.nodes = body.NodesAccessed
				}
				r.latency = time.Since(start)
				results <- r
			}
		}()
	}

	// Paced (or closed-loop) dispatch.
	start := time.Now()
	var interval time.Duration
	if qps > 0 {
		interval = time.Duration(float64(time.Second) / qps)
	}
	for i := 0; i < queries; i++ {
		if interval > 0 {
			next := start.Add(time.Duration(i) * interval)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
		work <- i
	}
	close(work)
	wg.Wait()
	close(results)
	elapsed := time.Since(start)

	var (
		lats              []time.Duration
		nodes, knns       int
		errors, windowsOK int
	)
	for r := range results {
		if r.err != nil {
			errors++
			continue
		}
		lats = append(lats, r.latency)
		nodes += r.nodes
		if r.isKNN {
			knns++
		} else {
			windowsOK++
		}
	}
	if len(lats) == 0 {
		return fmt.Errorf("all %d queries failed (last phase saw %d errors)", queries, errors)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) time.Duration { return percentile(lats, q) }
	var total time.Duration
	for _, l := range lats {
		total += l
	}
	fmt.Printf("query:  %d ok (%d window, %d knn), %d errors in %s — %.0f q/s achieved",
		len(lats), windowsOK, knns, errors, elapsed.Round(time.Millisecond), float64(len(lats))/elapsed.Seconds())
	if qps > 0 {
		fmt.Printf(" (target %.0f)", qps)
	}
	fmt.Println()
	fmt.Printf("        latency avg %s  p50 %s  p90 %s  p99 %s  max %s\n",
		(total / time.Duration(len(lats))).Round(time.Microsecond),
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
	fmt.Printf("        node accesses: %d total, %.1f per query\n", nodes, float64(nodes)/float64(len(lats)))
	if fanAfter := fetchFanout(client, addr); fanAfter != nil && fanBefore != nil && fanAfter.Queries > fanBefore.Queries {
		dq := fanAfter.Queries - fanBefore.Queries
		probed := fanAfter.ShardsProbed - fanBefore.ShardsProbed
		pruned := fanAfter.ShardsPruned - fanBefore.ShardsPruned
		fmt.Printf("        fanout: %.2f shards probed per query (%d probed, %d pruned over %d fan-outs)\n",
			float64(probed)/float64(dq), probed, pruned, dq)
	}
	return nil
}

// percentile returns the nearest-rank q-quantile of the sorted latency
// slice: the smallest observation with at least q·n observations at or
// below it (rank ceil(q·n), clamped to the slice). The floored
// interpolation index this replaces (int(q·(n-1))) under-reported tail
// percentiles — on 100 samples it returned the 99th-smallest value as
// "p99" instead of the 100th, hiding the worst observed latency entirely.
func percentile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(lats)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(lats) {
		i = len(lats) - 1
	}
	return lats[i]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rlr-loadgen:", err)
	os.Exit(1)
}
