// Command rlr-datagen generates the paper's datasets and query workloads
// as CSV files.
//
// Usage:
//
//	rlr-datagen -kind GAU -n 100000 -seed 1 -out gau.csv
//	rlr-datagen -queries 1000 -size 0.0001 -seed 2 -out queries.csv
//
// Dataset kinds: UNI, GAU, SKE (squares), CHI, IND (OSM-like points).
// With -queries set, random range queries of the given area fraction are
// generated instead of a dataset.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/rlr-tree/rlrtree/internal/cliutil"
	"github.com/rlr-tree/rlrtree/internal/dataset"
	"github.com/rlr-tree/rlrtree/internal/geom"
)

func main() {
	var (
		kind        = flag.String("kind", "UNI", "dataset kind: UNI, GAU, SKE, CHI, IND")
		n           = flag.Int("n", 100_000, "number of objects")
		seed        = flag.Int64("seed", 1, "random seed")
		out         = flag.String("out", "", "output CSV path (required)")
		queries     = flag.Int("queries", 0, "generate this many range queries instead of a dataset")
		size        = flag.Float64("size", 0.0001, "query area as a fraction of the unit square (with -queries)")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		cliutil.PrintVersion(os.Stdout, "rlr-datagen")
		return
	}

	if *out == "" {
		fatal(fmt.Errorf("-out is required"))
	}

	var rects []geom.Rect
	if *queries > 0 {
		rects = dataset.RangeQueries(*queries, *size, geom.NewRect(0, 0, 1, 1), *seed)
	} else {
		var err error
		rects, err = dataset.Generate(dataset.Kind(*kind), *n, *seed)
		if err != nil {
			fatal(err)
		}
	}
	if err := dataset.WriteCSV(*out, rects); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d rows to %s\n", len(rects), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rlr-datagen:", err)
	os.Exit(1)
}
