// Command rlr-bench regenerates the tables and figures of the RLR-Tree
// paper's evaluation.
//
// Usage:
//
//	rlr-bench [-scale small|medium|paper] [-exp id[,id...]] [-csv dir] [-quiet]
//
// Without -exp, every experiment runs in the paper's order. Experiment ids
// follow the paper: table1, table3, table4, fig4a, fig4b, fig5a, fig5b,
// fig6, fig7, fig8a, fig8bc, fig8d, fig9, fig10.
//
// The default scale ("small") completes the full suite in minutes on a
// laptop; "paper" uses the published dataset and training sizes and takes
// hours. RNA values are ratios against the classic R-Tree on the same
// insertion sequence, so the qualitative shapes are stable across scales.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/rlr-tree/rlrtree/internal/cliutil"
	"github.com/rlr-tree/rlrtree/internal/experiment"
)

func main() {
	var (
		scaleName   = flag.String("scale", "small", "experiment scale: small, medium, or paper")
		expList     = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		csvDir      = flag.String("csv", "", "also write each table as CSV into this directory")
		quiet       = flag.Bool("quiet", false, "suppress progress logging")
		seed        = flag.Int64("seed", 0, "override the scale's random seed")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		cliutil.PrintVersion(os.Stdout, "rlr-bench")
		return
	}

	sc, err := experiment.ScaleByName(*scaleName)
	if err != nil {
		fatal(err)
	}
	if *seed != 0 {
		sc.Seed = *seed
		sc.Cfg.Seed = *seed
	}

	ids := experiment.Order
	if *expList != "" {
		ids = strings.Split(*expList, ",")
	}

	var logf experiment.Logf
	if !*quiet {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		tables, err := experiment.Run(id, sc, logf)
		if err != nil {
			fatal(err)
		}
		for _, tb := range tables {
			fmt.Println(tb.String())
			if *csvDir != "" {
				name := strings.ReplaceAll(tb.ID, "/", "_") + ".csv"
				if err := os.WriteFile(filepath.Join(*csvDir, name), []byte(tb.CSV()), 0o644); err != nil {
					fatal(err)
				}
			}
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "# %s done in %s\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rlr-bench:", err)
	os.Exit(1)
}
