package rlrtree_test

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	rlrtree "github.com/rlr-tree/rlrtree"
)

func trainData(n int) []rlrtree.Rect {
	rng := rand.New(rand.NewSource(42))
	data := make([]rlrtree.Rect, n)
	for i := range data {
		x := 0.5 + rng.NormFloat64()*0.2
		y := 0.5 + rng.NormFloat64()*0.2
		data[i] = rlrtree.Square(clamp01(x), clamp01(y), 0.001)
	}
	return data
}

func clamp01(v float64) float64 {
	if v < 0.001 {
		return 0.001
	}
	if v > 0.999 {
		return 0.999
	}
	return v
}

func tinyCfg() rlrtree.TrainConfig {
	return rlrtree.TrainConfig{
		K: 2, P: 4,
		ChooseEpochs: 1, SplitEpochs: 1, Parts: 3,
		MaxEntries: 16, MinEntries: 6,
		TrainingQueryFrac: 0.001,
		Seed:              5,
	}
}

func TestPublicGeometryHelpers(t *testing.T) {
	r := rlrtree.NewRect(0.5, 0.5, 0.1, 0.1)
	if r.MinX != 0.1 || r.MaxX != 0.5 {
		t.Fatalf("NewRect did not normalize: %v", r)
	}
	p := rlrtree.Pt(0.3, 0.4)
	if !rlrtree.PointRect(p).ContainsPoint(p) {
		t.Fatalf("PointRect broken")
	}
	if rlrtree.Square(0.5, 0.5, 0.2).Area() < 0.039 {
		t.Fatalf("Square broken")
	}
}

func TestPublicHeuristicTree(t *testing.T) {
	tree := rlrtree.New(rlrtree.Options{
		MaxEntries: 16, MinEntries: 6,
		Chooser: rlrtree.RStarChooser{}, Splitter: rlrtree.RStarSplit{},
	})
	data := trainData(2000)
	for i, r := range data {
		tree.Insert(r, i)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	q := rlrtree.NewRect(0.45, 0.45, 0.55, 0.55)
	got, stats := tree.Search(q)
	want := 0
	for _, r := range data {
		if q.Intersects(r) {
			want++
		}
	}
	if len(got) != want || stats.NodesAccessed == 0 {
		t.Fatalf("search: %d results (want %d), stats %+v", len(got), want, stats)
	}
	if _, err := rlrtree.NewChecked(rlrtree.Options{MaxEntries: 3}); err == nil {
		t.Fatalf("NewChecked accepted bad options")
	}
}

func TestPublicTrainAndUse(t *testing.T) {
	data := trainData(3000)
	pol, report, err := rlrtree.TrainCombined(data[:1000], tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if report.ChooseUpdates == 0 || report.SplitUpdates == 0 {
		t.Fatalf("training did no updates: %+v", report)
	}
	tree := rlrtree.NewRLRTree(pol)
	for i, r := range data {
		tree.Insert(r, i)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	nn, _ := tree.KNN(rlrtree.Pt(0.5, 0.5), 5)
	if len(nn) != 5 {
		t.Fatalf("KNN returned %d", len(nn))
	}
	// Policies persist and reload through the public API.
	path := filepath.Join(t.TempDir(), "p.json")
	if err := pol.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := rlrtree.LoadPolicy(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.K != pol.K {
		t.Fatalf("reloaded policy differs")
	}
}

func TestPublicDistillAndHotPolicy(t *testing.T) {
	data := trainData(1500)
	pol, _, err := rlrtree.TrainChoosePolicy(data[:800], tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	bundle, report, err := rlrtree.Distill(pol, rlrtree.DistillConfig{Samples: 1500, Data: data[:800], Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !bundle.Distilled() || report.ChooseAgreement == 0 {
		t.Fatalf("distill produced nothing: %+v", report)
	}
	// Bundles persist as v2 files and reload with artifacts intact.
	path := filepath.Join(t.TempDir(), "bundle.json")
	if err := bundle.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := rlrtree.LoadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.ChooseTable == nil || back.ChooseQuant == nil {
		t.Fatalf("reloaded bundle lost artifacts")
	}
	// The hot policy drives a tree and swaps backends mid-stream.
	hot, err := rlrtree.NewHotPolicy(back, "table")
	if err != nil {
		t.Fatal(err)
	}
	tree := rlrtree.New(rlrtree.Options{
		MaxEntries: back.MaxEntries, MinEntries: back.MinEntries,
		Chooser: hot.Chooser(), Splitter: hot.Splitter(),
	})
	for i, r := range data[:700] {
		tree.Insert(r, i)
	}
	if err := hot.Swap(nil, "qmlp"); err != nil {
		t.Fatal(err)
	}
	for i, r := range data[700:] {
		tree.Insert(r, 700+i)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != len(data) {
		t.Fatalf("tree holds %d objects, want %d", tree.Len(), len(data))
	}
	if got := len(rlrtree.PolicyKinds()); got != 4 {
		t.Fatalf("PolicyKinds has %d entries", got)
	}
}

func TestPublicSingleOperationTraining(t *testing.T) {
	data := trainData(1000)
	if pol, _, err := rlrtree.TrainChoosePolicy(data, tinyCfg()); err != nil || pol.ChooseNet == nil {
		t.Fatalf("choose training: %v", err)
	}
	if pol, _, err := rlrtree.TrainSplitPolicy(data, tinyCfg()); err != nil || pol.SplitNet == nil {
		t.Fatalf("split training: %v", err)
	}
}

func ExampleNew() {
	tree := rlrtree.New(rlrtree.Options{MaxEntries: 8, MinEntries: 3})
	tree.Insert(rlrtree.Square(0.2, 0.2, 0.1), "cafe")
	tree.Insert(rlrtree.Square(0.8, 0.8, 0.1), "museum")
	results, _ := tree.Search(rlrtree.NewRect(0, 0, 0.5, 0.5))
	fmt.Println(results[0])
	// Output: cafe
}

func TestPublicBulkLoadAndSerialization(t *testing.T) {
	gob.Register(int(0))
	data := trainData(3000)
	items := make([]rlrtree.Item, len(data))
	for i, r := range data {
		items[i] = rlrtree.Item{Rect: r, Data: i}
	}
	tree, err := rlrtree.BulkLoadSTR(rlrtree.Options{MaxEntries: 16, MinEntries: 6}, items)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tree.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := rlrtree.DecodeTree(&buf, rlrtree.Options{MaxEntries: 16, MinEntries: 6})
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tree.Len() {
		t.Fatalf("round trip lost objects: %d vs %d", back.Len(), tree.Len())
	}
	// Best-first KNN agrees with the default DFS KNN through the facade.
	p := rlrtree.Pt(0.5, 0.5)
	a, _ := back.KNN(p, 9)
	b, _ := back.KNNBestFirst(p, 9)
	for i := range a {
		if a[i].DistSq != b[i].DistSq {
			t.Fatalf("KNN variants disagree at %d", i)
		}
	}
}

func TestPublicConcurrentTree(t *testing.T) {
	ct := rlrtree.NewConcurrentTree(rlrtree.New(rlrtree.Options{MaxEntries: 16, MinEntries: 6}))
	data := trainData(500)
	rects := make([]rlrtree.Rect, len(data))
	payloads := make([]any, len(data))
	for i, r := range data {
		rects[i], payloads[i] = r, i
	}
	ct.InsertBatch(rects, payloads)
	if ct.Len() != len(data) {
		t.Fatalf("len %d", ct.Len())
	}
	res, stats := ct.Search(rlrtree.NewRect(0, 0, 1, 1))
	if len(res) != len(data) || stats.NodesAccessed == 0 {
		t.Fatalf("search: %d results, %+v", len(res), stats)
	}
	var ts rlrtree.TreeStats
	ct.View(func(tr *rlrtree.Tree) { ts = tr.Stats() })
	if ts.Size != len(data) || ts.Nodes == 0 {
		t.Fatalf("stats: %+v", ts)
	}
}

func TestPublicIteratorJoinAndPager(t *testing.T) {
	data := trainData(2000)
	tree := rlrtree.New(rlrtree.Options{MaxEntries: 16, MinEntries: 6})
	other := rlrtree.New(rlrtree.Options{MaxEntries: 16, MinEntries: 6})
	for i, r := range data {
		tree.Insert(r, i)
		if i%2 == 0 {
			other.Insert(r, i)
		}
	}

	// Incremental nearest neighbors.
	it := tree.NewNearestIter(rlrtree.Pt(0.5, 0.5))
	prev := -1.0
	for i := 0; i < 10; i++ {
		nb, ok := it.Next()
		if !ok {
			t.Fatalf("iterator ended at %d", i)
		}
		if nb.DistSq < prev {
			t.Fatalf("distances decreased")
		}
		prev = nb.DistSq
	}

	// Spatial join: every object of `other` intersects itself in `tree`.
	selfPairs := 0
	rlrtree.JoinIntersects(tree, other, func(p rlrtree.JoinPair) {
		if p.DataA == p.DataB {
			selfPairs++
		}
	})
	if selfPairs != other.Len() {
		t.Fatalf("join found %d self pairs, want %d", selfPairs, other.Len())
	}

	// Pager replay.
	pool := rlrtree.NewBufferPool(8)
	rlrtree.WarmPool(tree, pool)
	io := rlrtree.ReplayRange(tree, pool, []rlrtree.Rect{rlrtree.NewRect(0.4, 0.4, 0.6, 0.6)})
	if io.Accesses == 0 || io.Faults > io.Accesses {
		t.Fatalf("bad IO stats %+v", io)
	}

	// SVG rendering through the facade.
	var buf bytes.Buffer
	if err := tree.WriteSVG(&buf, rlrtree.SVGOptions{Width: 200}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty SVG")
	}
}

func ExampleTree_KNN() {
	tree := rlrtree.New(rlrtree.Options{MaxEntries: 8, MinEntries: 3})
	tree.Insert(rlrtree.PointRect(rlrtree.Pt(0.1, 0.1)), "near")
	tree.Insert(rlrtree.PointRect(rlrtree.Pt(0.9, 0.9)), "far")
	nn, _ := tree.KNN(rlrtree.Pt(0, 0), 1)
	fmt.Println(nn[0].Data)
	// Output: near
}

func ExampleBulkLoadSTR() {
	items := []rlrtree.Item{
		{Rect: rlrtree.Square(0.25, 0.25, 0.1), Data: "a"},
		{Rect: rlrtree.Square(0.75, 0.75, 0.1), Data: "b"},
	}
	tree, err := rlrtree.BulkLoadSTR(rlrtree.Options{MaxEntries: 8, MinEntries: 3}, items)
	if err != nil {
		panic(err)
	}
	fmt.Println(tree.Len())
	// Output: 2
}

func ExampleJoinIntersects() {
	a := rlrtree.New(rlrtree.Options{MaxEntries: 8, MinEntries: 3})
	b := rlrtree.New(rlrtree.Options{MaxEntries: 8, MinEntries: 3})
	a.Insert(rlrtree.NewRect(0, 0, 1, 1), "zone")
	b.Insert(rlrtree.PointRect(rlrtree.Pt(0.5, 0.5)), "sensor")
	b.Insert(rlrtree.PointRect(rlrtree.Pt(5, 5)), "outside")
	rlrtree.JoinIntersects(a, b, func(p rlrtree.JoinPair) {
		fmt.Println(p.DataA, "contains", p.DataB)
	})
	// Output: zone contains sensor
}
